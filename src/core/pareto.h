/**
 * @file
 * Multi-objective (Pareto) analysis of exploration trajectories.
 *
 * Architecture DSE is intrinsically multi-objective — the environments
 * report <latency, power/energy, area> tuples even when a scalar reward
 * drives the search. Because every transition is logged through the
 * standardized interface (§3.4), the non-dominated frontier of any
 * trajectory or dataset can be recovered after the fact, regardless of
 * which agent produced it. Used by the accelerator example to show the
 * latency/energy trade-off behind a single-scalar search.
 */

#ifndef ARCHGYM_CORE_PARETO_H
#define ARCHGYM_CORE_PARETO_H

#include <vector>

#include "core/trajectory.h"

namespace archgym {

/** Per-metric optimization direction. */
enum class Sense { Minimize, Maximize };

/**
 * True if candidate `a` dominates `b`: at least as good on every
 * selected metric and strictly better on at least one.
 *
 * @param metric_indices  which observation entries participate
 * @param senses          direction per selected metric (same order)
 */
bool dominates(const Metrics &a, const Metrics &b,
               const std::vector<std::size_t> &metric_indices,
               const std::vector<Sense> &senses);

/**
 * Indices (into `transitions`) of the non-dominated set. Duplicated
 * metric vectors keep their first occurrence only. Order follows the
 * selected metrics lexicographically (first metric best first, later
 * metrics and the index breaking ties), which both fast paths and the
 * naive oracle produce identically.
 *
 * The two-metric case runs a sort-based skyline sweep in O(N log N);
 * the three-metric case — the paper's native <latency, power, area>
 * tuples — runs the m0-sorted sweep with a prefix-min tree over the
 * compressed second metric, also O(N log N). Other arities, and any
 * input containing NaN metrics, fall back to the all-pairs scan.
 */
std::vector<std::size_t>
paretoFront(const std::vector<Transition> &transitions,
            const std::vector<std::size_t> &metric_indices,
            const std::vector<Sense> &senses);

/**
 * Reference all-pairs O(N^2 * F) dominance scan with identical output
 * contract. Kept as the correctness oracle for the skyline fast path
 * (randomized equivalence tests compare the two); prefer paretoFront.
 */
std::vector<std::size_t>
paretoFrontNaive(const std::vector<Transition> &transitions,
                 const std::vector<std::size_t> &metric_indices,
                 const std::vector<Sense> &senses);

/**
 * Hypervolume indicator in two dimensions (both minimized), w.r.t. a
 * reference point that every front member must dominate. Standard
 * quality measure for comparing fronts from different searches.
 * @return 0 for an empty front.
 */
double hypervolume2d(const std::vector<Transition> &transitions,
                     const std::vector<std::size_t> &front,
                     std::size_t metric_x, std::size_t metric_y,
                     double ref_x, double ref_y);

} // namespace archgym

#endif // ARCHGYM_CORE_PARETO_H
