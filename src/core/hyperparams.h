/**
 * @file
 * Hyperparameter handling (paper §4, Q3).
 *
 * Every agent exposes its exploration/exploitation knobs as a HyperParams
 * bag fixed at construction. HyperGrid enumerates cartesian-product sweeps
 * over those knobs — the machinery behind the "hyperparameter lottery"
 * experiments (Figs. 4-6) where thousands of configurations per agent are
 * evaluated.
 */

#ifndef ARCHGYM_CORE_HYPERPARAMS_H
#define ARCHGYM_CORE_HYPERPARAMS_H

#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "mathutil/rng.h"

namespace archgym {

/** Named scalar hyperparameter assignment. */
class HyperParams
{
  public:
    HyperParams() = default;
    HyperParams(std::initializer_list<std::pair<const std::string, double>>
                    entries)
        : values_(entries)
    {}

    /** Value of the knob, or fallback when unset. */
    double get(const std::string &name, double fallback) const;

    /** Integer-valued convenience accessor. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    bool has(const std::string &name) const;

    HyperParams &set(const std::string &name, double value);

    const std::map<std::string, double> &values() const { return values_; }

    /** "k1=v1,k2=v2" rendering for trajectory metadata. */
    std::string str() const;

  private:
    std::map<std::string, double> values_;
};

/**
 * Sweep definition: a set of candidate values per knob. Enumerate the full
 * cartesian product or draw random configurations, both deterministic.
 */
class HyperGrid
{
  public:
    HyperGrid &add(const std::string &name, std::vector<double> values);

    /** Number of points in the full cartesian product. */
    std::size_t gridSize() const;

    /** All combinations in lexicographic order. */
    std::vector<HyperParams> enumerate() const;

    /** n independent uniform draws (one value per knob per draw). */
    std::vector<HyperParams> randomSample(std::size_t n, Rng &rng) const;

  private:
    std::vector<std::pair<std::string, std::vector<double>>> axes_;
};

} // namespace archgym

#endif // ARCHGYM_CORE_HYPERPARAMS_H
