/**
 * @file
 * The ArchGym agent interface (paper §3.2, §4).
 *
 * An agent is an encapsulation of a search algorithm: a guiding *policy*
 * plus its *hyperparameters*. The interface is the ask-tell distillation
 * of the paper's three questions (Table 2):
 *
 *  - Q1 selectAction(): the policy proposes the next design point.
 *    Population-based agents (GA, ACO) serialize their generations through
 *    this call, draining an internal queue one individual at a time so a
 *    single driver loop works for every algorithm.
 *  - Q2 observe(): feedback (reward/fitness) fine-tunes the policy —
 *    GP refit for BO, pheromone deposit for ACO, selection for GA,
 *    policy gradient for RL.
 *  - Q3 hyperParams(): all exploration/exploitation knobs are fixed at
 *    construction and enumerable for sweeps.
 */

#ifndef ARCHGYM_CORE_AGENT_H
#define ARCHGYM_CORE_AGENT_H

#include <memory>
#include <string>

#include "core/environment.h"
#include "core/hyperparams.h"
#include "core/param_space.h"

namespace archgym {

/** Abstract ML-based search agent. */
class Agent
{
  public:
    /**
     * @param name   algorithm identifier, e.g. "GA"
     * @param space  the environment's parameter space
     * @param hp     algorithm hyperparameters (Q3)
     */
    Agent(std::string name, const ParamSpace &space, HyperParams hp)
        : name_(std::move(name)), space_(space), hp_(std::move(hp))
    {}

    virtual ~Agent() = default;

    const std::string &name() const { return name_; }
    const HyperParams &hyperParams() const { return hp_; }
    const ParamSpace &space() const { return space_; }

    /** Q1: propose the next design point to evaluate. */
    virtual Action selectAction() = 0;

    /** Q2: feed back the evaluation of the most recent proposal. */
    virtual void observe(const Action &action, const Metrics &metrics,
                         double reward) = 0;

    /**
     * Q1 batched: propose a cohort of at most maxActions design points
     * whose evaluations are mutually independent, to be evaluated
     * together through Environment::stepBatch.
     *
     * The proposals must be exactly the actions the per-step path would
     * produce, in the same order, so a batched search trajectory is
     * bit-identical to the sequential one. Population-based agents
     * override this to drain every unevaluated member of the current
     * generation (GA) or cohort (ACO); BO's batch acquisition modes
     * (ThompsonBatch/BatchEI) propose acquisition-ranked cohorts, with
     * selectAction defined as the one-slot cohort so the per-step and
     * batched trajectories of the *same mode* still agree. The default
     * returns a single selectAction() proposal. Returns an empty batch
     * only when maxActions is 0. Every proposal must be answered by one
     * observeBatch() call before the next selectActionBatch().
     */
    virtual std::vector<Action> selectActionBatch(std::size_t maxActions)
    {
        std::vector<Action> batch;
        if (maxActions > 0)
            batch.push_back(selectAction());
        return batch;
    }

    /**
     * Q2 batched: feedback for every proposal of the preceding
     * selectActionBatch(), in the same order. The default forwards to
     * observe() element by element.
     */
    virtual void observeBatch(const std::vector<Action> &actions,
                              const std::vector<StepResult> &results)
    {
        for (std::size_t i = 0; i < actions.size(); ++i)
            observe(actions[i], results[i].observation,
                    results[i].reward);
    }

    /** Reinitialize all policy state (fresh search, same hyperparams). */
    virtual void reset() = 0;

  protected:
    std::string name_;
    const ParamSpace &space_;
    HyperParams hp_;
};

/**
 * Factory signature used by sweep drivers: builds a fresh agent for a
 * hyperparameter assignment and seed.
 */
using AgentFactory = std::unique_ptr<Agent> (*)(const ParamSpace &,
                                                const HyperParams &,
                                                std::uint64_t seed);

} // namespace archgym

#endif // ARCHGYM_CORE_AGENT_H
