/**
 * @file
 * Fault isolation for long-running evaluations: retry/backoff policy,
 * cooperative run deadlines, and the lease-watchdog registry.
 *
 * Real architecture simulators crash and hang on pathological corner
 * configurations — exactly the configurations a lottery sweep is
 * guaranteed to visit. This layer lets the sweep engine complete
 * *degraded and accounted-for* instead of dying:
 *
 *  - RunAttemptPolicy bounds how often a failing run is retried
 *    (exponential backoff with deterministic jitter) and how long a
 *    single attempt may spin (per-run wall-clock deadline).
 *  - CancelScope installs the deadline for the current thread;
 *    resilience::checkpoint() — called on a stride from the long eval
 *    loops (DRAM controller cycle loop, Timeloop/Maestro mappers,
 *    FARSI scan) and once per sample from runSearch — raises
 *    RunTimeout once the deadline passes, so a runaway run unwinds
 *    cooperatively instead of spinning forever.
 *  - The watchdog registry tracks every active deadline per worker id.
 *    Lease heartbeat threads consult it (core/lease.cc) and stop
 *    refreshing once a run has overstayed its deadline, so even a run
 *    that never reaches a checkpoint (truly wedged inside foreign
 *    code) lets the worker's lease go stale and the shard get stolen.
 *
 * Deadlines are measured on the lease clock (leaseClockNowNs), so the
 * injectable test clock drives run timeouts and lease staleness
 * coherently. Checkpoints are a thread-local pointer test when no
 * deadline is active — cheap enough to leave in release hot loops at a
 * modest stride.
 */

#ifndef ARCHGYM_CORE_RESILIENCE_H
#define ARCHGYM_CORE_RESILIENCE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace archgym {

/**
 * Raised (from resilience::checkpoint) when the active run exceeds its
 * wall-clock deadline. The message is built from the configured
 * deadline only — never from elapsed time or worker identity — so a
 * quarantine record derived from it is byte-identical no matter which
 * worker hit the timeout.
 */
class RunTimeout : public std::runtime_error
{
  public:
    explicit RunTimeout(std::uint64_t deadline_ms)
        : std::runtime_error("run deadline of " +
                             std::to_string(deadline_ms) +
                             " ms exceeded"),
          deadlineMs_(deadline_ms)
    {}

    std::uint64_t deadlineMs() const { return deadlineMs_; }

  private:
    std::uint64_t deadlineMs_ = 0;
};

/**
 * Per-run fault-isolation policy of the sharded sweep engine.
 *
 * The default policy is fully transparent (one attempt, no deadline,
 * no quarantine): a throwing run unwinds the sweep exactly as before.
 * Any non-default field switches the engine into isolated execution:
 * failures are caught per run, classified (throw / timeout; an
 * injected WorkerKilled is *never* caught), and retried up to
 * maxAttempts with exponential backoff. What happens at exhaustion
 * depends on `quarantine`: true appends a durable gap record and moves
 * on; false rethrows the final error (the sweep dies, but only after
 * the configured retries).
 */
struct RunAttemptPolicy
{
    /** Total attempts per configuration, fleet-wide (attempt counts
     *  are persisted, so a thief resumes the count, never restarts
     *  it). Must be >= 1. */
    std::size_t maxAttempts = 1;

    /** Wall-clock budget of a single attempt in ms; 0 = unlimited. */
    std::uint64_t runDeadlineMs = 0;

    /** Backoff before retry k (1-based) is
     *  min(backoffBaseMs * backoffMultiplier^(k-1), backoffMaxMs),
     *  scaled by a deterministic jitter in [1-j, 1+j]. 0 disables
     *  backoff (tests). */
    std::uint64_t backoffBaseMs = 100;
    double backoffMultiplier = 2.0;
    std::uint64_t backoffMaxMs = 5000;
    double jitterFraction = 0.25;

    /** Exhausted attempts become a durable quarantine record plus an
     *  explicit gap in results/dataset instead of killing the sweep. */
    bool quarantine = false;

    /** True when any knob deviates from pass-through semantics. */
    bool isolated() const
    {
        return quarantine || maxAttempts > 1 || runDeadlineMs > 0;
    }
};

/**
 * Backoff before retry `attempt` (1-based count of completed failed
 * attempts) in ms. Jitter is derived from (seed, attempt) with a
 * splitmix64 hash — deterministic and state-free, so retried runs
 * never perturb any RNG stream and the schedule reproduces exactly.
 */
std::uint64_t attemptBackoffMs(const RunAttemptPolicy &policy,
                               std::uint64_t seed, std::size_t attempt);

namespace resilience {

/** Shared cancellation/deadline state of one run attempt (opaque). */
struct CancelState;

/**
 * RAII deadline for the current thread: construction arms a deadline
 * of `deadline_ms` from now on the lease clock (0 arms nothing) and —
 * when a worker id is given — registers it with the lease watchdog;
 * destruction restores the previous scope. Scopes nest (the innermost
 * one is the active one).
 */
class CancelScope
{
  public:
    CancelScope(const std::string &worker_id, std::uint64_t deadline_ms);
    ~CancelScope();

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

    /** The scope's state, shareable across threads via adoption. */
    std::shared_ptr<CancelState> state() const { return state_; }

  private:
    std::shared_ptr<CancelState> state_;
    CancelState *prev_ = nullptr;
    bool registered_ = false;
};

/**
 * Adopt another thread's active cancel state on this thread (used by
 * Environment::parallelEvalBatch to carry the calling run's deadline
 * into pool-worker slot bodies). A null state adopts nothing.
 */
class AdoptCancelScope
{
  public:
    explicit AdoptCancelScope(std::shared_ptr<CancelState> state);
    ~AdoptCancelScope();

    AdoptCancelScope(const AdoptCancelScope &) = delete;
    AdoptCancelScope &operator=(const AdoptCancelScope &) = delete;

  private:
    std::shared_ptr<CancelState> state_;
    CancelState *prev_ = nullptr;
    bool installed_ = false;
};

/** The calling thread's active cancel state (null when none). */
std::shared_ptr<CancelState> currentCancelState();

/**
 * Cooperative cancellation point: throws RunTimeout when the calling
 * thread's active deadline has passed; no-op (a thread-local pointer
 * test) otherwise. Long eval loops call this on a stride.
 */
void checkpoint();

/** Non-throwing query: has the active deadline passed? */
bool deadlineExpired() noexcept;

/**
 * Lease-watchdog query: does `worker_id` currently own any armed run
 * deadline that has already passed? Heartbeat threads skip their
 * refresh while this holds, so a wedged worker's lease goes stale and
 * its shard can be stolen.
 */
bool workerHasExpiredRun(const std::string &worker_id);

} // namespace resilience

} // namespace archgym

#endif // ARCHGYM_CORE_RESILIENCE_H
