#include "lease.h"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "core/fault_hooks.h"
#include "core/fsio.h"
#include "core/resilience.h"

namespace archgym {

namespace {

/**
 * Exclusive flock on <dir>/sweep.lock for the lifetime of the guard.
 * Serializes lease create/judge/steal/refresh/release across every
 * cooperating process; the lock file itself carries no data.
 */
class SweepDirLock
{
  public:
    explicit SweepDirLock(const std::string &dir)
    {
        const std::string path = dir + "/sweep.lock";
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
        if (fd_ < 0)
            throw std::runtime_error("lease: cannot open " + path + ": " +
                                     std::strerror(errno));
        if (::flock(fd_, LOCK_EX) != 0) {
            const int err = errno;
            ::close(fd_);
            throw std::runtime_error("lease: flock failed on " + path +
                                     ": " + std::strerror(err));
        }
    }

    ~SweepDirLock()
    {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }

    SweepDirLock(const SweepDirLock &) = delete;
    SweepDirLock &operator=(const SweepDirLock &) = delete;

  private:
    int fd_;
};

std::string
renderLease(const std::string &worker, std::uint64_t pid,
            std::uint64_t nonce, std::uint64_t sequence,
            std::uint64_t heartbeat_ns)
{
    std::ostringstream os;
    os << "{\"worker\":\"";
    for (char c : worker) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << "\",\"pid\":" << pid << ",\"nonce\":" << nonce
       << ",\"seq\":" << sequence << ",\"heartbeatNs\":" << heartbeat_ns
       << "}\n";
    return os.str();
}

/** Parse `"key":<uint>` out of a lease line; false on any mismatch. */
bool
leaseUint(const std::string &text, const char *key, std::uint64_t &out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *begin = text.data() + pos + needle.size();
    const auto res =
        std::from_chars(begin, text.data() + text.size(), out);
    return res.ec == std::errc{} && res.ptr != begin;
}

/** Unique-per-acquisition nonce (distinct even within one process). */
std::uint64_t
nextNonce()
{
    static std::atomic<std::uint64_t> counter{0};
    return (static_cast<std::uint64_t>(::getpid()) << 32) ^
           (counter.fetch_add(1) + 1);
}

/** Write a lease record via unique-tmp + rename (atomic refresh). */
void
writeLeaseFile(const std::string &path, const std::string &bytes)
{
    const std::string tmp = fsio::uniqueTmpPath(path);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << bytes;
        if (!out.flush())
            throw std::runtime_error("lease: cannot write " + tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw std::runtime_error("lease: rename failed onto " + path +
                                 ": " + std::strerror(err));
    }
}

} // namespace

std::uint64_t
leaseClockNowNs()
{
    if (faultHooks().clockNowNs)
        return faultHooks().clockNowNs();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
readLeaseRecord(const std::string &path, LeaseRecord &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto workerPos = text.find("\"worker\":\"");
    if (workerPos == std::string::npos)
        return false;
    std::size_t pos = workerPos + std::strlen("\"worker\":\"");
    std::string worker;
    while (pos < text.size() && text[pos] != '"') {
        if (text[pos] == '\\' && pos + 1 < text.size())
            ++pos;
        worker.push_back(text[pos++]);
    }
    if (pos >= text.size())
        return false;  // unterminated string: torn write
    LeaseRecord rec;
    rec.workerId = std::move(worker);
    if (!leaseUint(text, "pid", rec.pid) ||
        !leaseUint(text, "nonce", rec.nonce) ||
        !leaseUint(text, "seq", rec.sequence) ||
        !leaseUint(text, "heartbeatNs", rec.heartbeatNs))
        return false;
    out = std::move(rec);
    return true;
}

std::unique_ptr<ShardLease>
ShardLease::tryAcquire(const std::string &dir, std::size_t shard,
                       const LeaseOptions &opts)
{
    char stem[32];
    std::snprintf(stem, sizeof(stem), "shard_%04zu.lease", shard);
    const std::string leasePath = dir + "/" + stem;

    SweepDirLock lock(dir);
    bool stolen = false;
    int fd = ::open(leasePath.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        if (errno != EEXIST)
            throw std::runtime_error("lease: cannot create " + leasePath +
                                     ": " + std::strerror(errno));
        LeaseRecord cur;
        const bool parsed = readLeaseRecord(leasePath, cur);
        const std::uint64_t now = leaseClockNowNs();
        const std::uint64_t ttlNs = opts.ttlMs * 1000000ULL;
        const bool stale =
            !parsed ||
            (now > cur.heartbeatNs && now - cur.heartbeatNs > ttlNs);
        if (!stale)
            return nullptr;  // live owner: shard is busy
        ::unlink(leasePath.c_str());
        fd = ::open(leasePath.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd < 0)
            throw std::runtime_error("lease: cannot recreate " +
                                     leasePath + ": " +
                                     std::strerror(errno));
        stolen = true;
    }

    const std::uint64_t nonce = nextNonce();
    const std::string bytes =
        renderLease(opts.workerId, static_cast<std::uint64_t>(::getpid()),
                    nonce, 0, leaseClockNowNs());
    const char *data = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            ::unlink(leasePath.c_str());
            throw std::runtime_error("lease: write failed on " +
                                     leasePath + ": " +
                                     std::strerror(err));
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    ::close(fd);

    return std::unique_ptr<ShardLease>(
        new ShardLease(dir, leasePath, opts, nonce, stolen));
}

ShardLease::ShardLease(std::string dir, std::string lease_path,
                       LeaseOptions opts, std::uint64_t nonce, bool stolen)
    : dir_(std::move(dir)), leasePath_(std::move(lease_path)),
      opts_(std::move(opts)), nonce_(nonce), stolen_(stolen)
{
    if (opts_.heartbeatMs == 0)
        opts_.heartbeatMs = std::max<std::uint64_t>(1, opts_.ttlMs / 4);
    heartbeat_ = std::thread([this] { heartbeatMain(); });
}

ShardLease::~ShardLease()
{
    // Crash semantics: stop the refresher but leave the lease file —
    // an exception unwinding through the engine must look exactly
    // like a dead worker to its peers.
    stopHeartbeat();
}

bool
ShardLease::lost() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lost_;
}

void
ShardLease::stopHeartbeat()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    if (heartbeat_.joinable())
        heartbeat_.join();
}

void
ShardLease::heartbeatMain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait_for(lock,
                       std::chrono::milliseconds(opts_.heartbeatMs),
                       [this] { return stopping_; });
        if (stopping_)
            return;
        const auto &stalled = faultHooks().heartbeatStalled;
        if (stalled && stalled(opts_.workerId))
            continue;  // injected stall: lease goes stale while we live
        // Watchdog: once one of this worker's runs overstays its
        // deadline, stop vouching for the worker. A wedged run that
        // never reaches a cancellation checkpoint would otherwise keep
        // a perfectly fresh lease forever and the shard could never be
        // stolen — the heartbeat is a liveness *and* progress claim.
        if (resilience::workerHasExpiredRun(opts_.workerId))
            continue;
        lock.unlock();
        const bool stillOurs = refreshLocked();
        lock.lock();
        if (!stillOurs) {
            lost_ = true;
            return;  // stolen from under us: stop refreshing
        }
    }
}

bool
ShardLease::refreshLocked()
{
    try {
        SweepDirLock lock(dir_);
        LeaseRecord cur;
        if (!readLeaseRecord(leasePath_, cur) || cur.nonce != nonce_ ||
            cur.workerId != opts_.workerId)
            return false;
        ++sequence_;
        writeLeaseFile(leasePath_,
                       renderLease(opts_.workerId,
                                   static_cast<std::uint64_t>(::getpid()),
                                   nonce_, sequence_, leaseClockNowNs()));
        return true;
    } catch (const std::exception &) {
        // Transient I/O trouble: keep the lease, retry next beat. The
        // TTL is the backstop if the trouble persists.
        return true;
    }
}

void
ShardLease::release()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (released_)
            return;
        released_ = true;
    }
    stopHeartbeat();
    SweepDirLock lock(dir_);
    LeaseRecord cur;
    if (readLeaseRecord(leasePath_, cur) && cur.nonce == nonce_ &&
        cur.workerId == opts_.workerId)
        ::unlink(leasePath_.c_str());
}

} // namespace archgym
