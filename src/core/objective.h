/**
 * @file
 * Reward / fitness formulations from Table 3 of the paper.
 *
 * Rewards are always "higher is better" from the agent's perspective; the
 * objective translates raw cost-model metrics into that convention:
 *
 *  - TargetObjective:  r_x = X_target / |X_target - X_obs|  (DRAMGym,
 *    TimeloopGym). Supports joint objectives as the mean over per-metric
 *    terms and is capped to keep the reward finite when the target is met
 *    exactly.
 *  - BudgetDistanceObjective: FARSIGym's distance-to-budget,
 *    sum_m alpha * (D_m - B_m) / B_m; the reward is the negated distance
 *    so that smaller distance means larger reward.
 *  - InverseObjective: r_x = 1 / X_target-metric (MaestroGym).
 */

#ifndef ARCHGYM_CORE_OBJECTIVE_H
#define ARCHGYM_CORE_OBJECTIVE_H

#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"

namespace archgym {

/** Maps a metrics vector to the scalar agent feedback signal. */
class Objective
{
  public:
    virtual ~Objective() = default;

    /** Reward for the observation; higher is always better. */
    virtual double reward(const Metrics &metrics) const = 0;

    /** True when the observation satisfies the user-defined criteria. */
    virtual bool satisfied(const Metrics &metrics) const { (void)metrics; return false; }

    /** Human-readable description for logs. */
    virtual std::string describe() const = 0;
};

/** One tracked metric inside a TargetObjective. */
struct TargetTerm
{
    std::size_t metricIndex = 0;  ///< index into the metrics vector
    double target = 0.0;          ///< user-defined target value
    double weight = 1.0;
    std::string name;             ///< metric name, for describe()
};

/**
 * Table 3 reward r_x = X_target / |X_target - X_obs| with multi-objective
 * support: the joint reward is the weighted mean of per-term rewards.
 */
class TargetObjective : public Objective
{
  public:
    explicit TargetObjective(std::vector<TargetTerm> terms,
                             double cap = 1e6, double tolerance = 0.01);

    double reward(const Metrics &metrics) const override;
    bool satisfied(const Metrics &metrics) const override;
    std::string describe() const override;

    const std::vector<TargetTerm> &terms() const { return terms_; }

  private:
    std::vector<TargetTerm> terms_;
    double cap_;        ///< reward ceiling when |X - target| -> 0
    double tolerance_;  ///< relative tolerance for satisfied()
};

/** One budgeted metric inside FARSI's distance-to-budget. */
struct BudgetTerm
{
    std::size_t metricIndex = 0;
    double budget = 1.0;  ///< B_m
    double alpha = 1.0;   ///< weighting coefficient
    std::string name;
};

/**
 * FARSIGym reward: negative distance-to-budget. Terms only contribute when
 * they exceed their budget (a design under budget on every axis has
 * distance 0, the optimum), matching FARSI's semantics of "how far is the
 * design from meeting all budgets".
 */
class BudgetDistanceObjective : public Objective
{
  public:
    explicit BudgetDistanceObjective(std::vector<BudgetTerm> terms);

    /** Reward = -distance; distance() is also exposed for reports. */
    double reward(const Metrics &metrics) const override;
    double distance(const Metrics &metrics) const;
    bool satisfied(const Metrics &metrics) const override;
    std::string describe() const override;

  private:
    std::vector<BudgetTerm> terms_;
};

/** MaestroGym reward: r = 1 / metric (e.g. 1 / runtime). */
class InverseObjective : public Objective
{
  public:
    InverseObjective(std::size_t metric_index, std::string metric_name);

    double reward(const Metrics &metrics) const override;
    std::string describe() const override;

  private:
    std::size_t metricIndex_;
    std::string metricName_;
};

} // namespace archgym

#endif // ARCHGYM_CORE_OBJECTIVE_H
