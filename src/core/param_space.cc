#include "param_space.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace archgym {

ParamDesc
ParamDesc::categorical(std::string name, std::vector<std::string> options)
{
    assert(!options.empty());
    ParamDesc d;
    d.name_ = std::move(name);
    d.kind_ = Kind::Categorical;
    d.levels_ = options.size();
    d.options_ = std::move(options);
    return d;
}

ParamDesc
ParamDesc::integer(std::string name, std::int64_t min, std::int64_t max,
                   std::int64_t step)
{
    assert(step > 0 && max >= min);
    ParamDesc d;
    d.name_ = std::move(name);
    d.kind_ = Kind::Integer;
    d.min_ = static_cast<double>(min);
    d.max_ = static_cast<double>(max);
    d.step_ = static_cast<double>(step);
    d.levels_ = static_cast<std::size_t>((max - min) / step) + 1;
    return d;
}

ParamDesc
ParamDesc::real(std::string name, double min, double max, double step)
{
    assert(step > 0.0 && max >= min);
    ParamDesc d;
    d.name_ = std::move(name);
    d.kind_ = Kind::Real;
    d.min_ = min;
    d.max_ = max;
    d.step_ = step;
    d.levels_ = static_cast<std::size_t>(
                    std::floor((max - min) / step + 1e-9)) + 1;
    return d;
}

ParamDesc
ParamDesc::powerOfTwo(std::string name, std::int64_t min, std::int64_t max)
{
    assert(min > 0 && max >= min);
    ParamDesc d;
    d.name_ = std::move(name);
    d.kind_ = Kind::Integer;
    for (std::int64_t v = min; v <= max; v *= 2)
        d.explicitValues_.push_back(static_cast<double>(v));
    d.min_ = d.explicitValues_.front();
    d.max_ = d.explicitValues_.back();
    d.levels_ = d.explicitValues_.size();
    return d;
}

double
ParamDesc::levelToValue(std::size_t level) const
{
    assert(level < levels_);
    if (kind_ == Kind::Categorical)
        return static_cast<double>(level);
    if (!explicitValues_.empty())
        return explicitValues_[level];
    // Clamp: min + level * step can drift past max in floating point
    // (e.g. 0.4 + 8 * 0.2 = 2.0000000000000004), which would silently
    // hand cost models out-of-range parameter values at the top level.
    return std::clamp(min_ + static_cast<double>(level) * step_, min_,
                      max_);
}

std::size_t
ParamDesc::valueToLevel(double value) const
{
    if (kind_ == Kind::Categorical) {
        auto idx = static_cast<std::int64_t>(std::llround(value));
        idx = std::clamp<std::int64_t>(idx, 0,
                                       static_cast<std::int64_t>(levels_) - 1);
        return static_cast<std::size_t>(idx);
    }
    if (!explicitValues_.empty()) {
        // Nearest explicit grid point.
        std::size_t best = 0;
        double bestDist = std::abs(explicitValues_[0] - value);
        for (std::size_t i = 1; i < explicitValues_.size(); ++i) {
            const double dist = std::abs(explicitValues_[i] - value);
            if (dist < bestDist) {
                bestDist = dist;
                best = i;
            }
        }
        return best;
    }
    const double rel = (value - min_) / step_;
    auto idx = static_cast<std::int64_t>(std::llround(rel));
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(levels_) - 1);
    return static_cast<std::size_t>(idx);
}

std::size_t
ParamDesc::unitToLevel(double u) const
{
    u = std::clamp(u, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(u * static_cast<double>(levels_));
    return std::min(idx, levels_ - 1);
}

double
ParamDesc::levelToUnit(std::size_t level) const
{
    assert(level < levels_);
    return (static_cast<double>(level) + 0.5) /
           static_cast<double>(levels_);
}

std::string
ParamDesc::valueName(double value) const
{
    if (kind_ == Kind::Categorical)
        return options_[valueToLevel(value)];
    std::ostringstream os;
    if (kind_ == Kind::Integer)
        os << static_cast<std::int64_t>(std::llround(value));
    else
        os << value;
    return os.str();
}

ParamSpace &
ParamSpace::add(ParamDesc dim)
{
    dims_.push_back(std::move(dim));
    return *this;
}

std::size_t
ParamSpace::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < dims_.size(); ++i)
        if (dims_[i].name() == name)
            return i;
    throw std::out_of_range("ParamSpace: no dimension named " + name);
}

double
ParamSpace::cardinality() const
{
    double c = 1.0;
    for (const auto &d : dims_)
        c *= static_cast<double>(d.levels());
    return c;
}

Action
ParamSpace::sample(Rng &rng) const
{
    Action a(dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        const auto level =
            static_cast<std::size_t>(rng.below(dims_[i].levels()));
        a[i] = dims_[i].levelToValue(level);
    }
    return a;
}

Action
ParamSpace::quantize(const Action &raw) const
{
    assert(raw.size() == dims_.size());
    Action a(raw.size());
    for (std::size_t i = 0; i < dims_.size(); ++i)
        a[i] = dims_[i].levelToValue(dims_[i].valueToLevel(raw[i]));
    return a;
}

bool
ParamSpace::contains(const Action &action) const
{
    if (action.size() != dims_.size())
        return false;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        const double snapped =
            dims_[i].levelToValue(dims_[i].valueToLevel(action[i]));
        if (std::abs(snapped - action[i]) > 1e-9)
            return false;
    }
    return true;
}

std::vector<std::size_t>
ParamSpace::toLevels(const Action &action) const
{
    assert(action.size() == dims_.size());
    std::vector<std::size_t> levels(action.size());
    for (std::size_t i = 0; i < dims_.size(); ++i)
        levels[i] = dims_[i].valueToLevel(action[i]);
    return levels;
}

Action
ParamSpace::fromLevels(const std::vector<std::size_t> &levels) const
{
    assert(levels.size() == dims_.size());
    Action a(levels.size());
    for (std::size_t i = 0; i < dims_.size(); ++i)
        a[i] = dims_[i].levelToValue(levels[i]);
    return a;
}

std::vector<double>
ParamSpace::toUnit(const Action &action) const
{
    assert(action.size() == dims_.size());
    std::vector<double> u(action.size());
    for (std::size_t i = 0; i < dims_.size(); ++i)
        u[i] = dims_[i].levelToUnit(dims_[i].valueToLevel(action[i]));
    return u;
}

Action
ParamSpace::fromUnit(const std::vector<double> &unit) const
{
    assert(unit.size() == dims_.size());
    Action a(unit.size());
    for (std::size_t i = 0; i < dims_.size(); ++i)
        a[i] = dims_[i].levelToValue(dims_[i].unitToLevel(unit[i]));
    return a;
}

std::string
ParamSpace::describe(const Action &action) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0)
            os << " ";
        os << dims_[i].name() << "=" << dims_[i].valueName(action[i]);
    }
    return os.str();
}

std::string
ParamSpace::headerCsv() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0)
            os << ",";
        os << dims_[i].name();
    }
    return os.str();
}

} // namespace archgym
