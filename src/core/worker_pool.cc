#include "worker_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace archgym {

namespace {

thread_local bool t_onWorkerThread = false;

/**
 * Shared state of one parallelFor invocation. Heap-allocated and shared
 * with the queued slot tasks: the caller may finish the loop (and
 * destroy the body) before a starved task is ever scheduled, so late
 * tasks must find the loop already drained — they check `cancelled` and
 * the claim counter, both of which live here, before touching `body`.
 */
struct LoopState
{
    std::size_t count = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t, std::size_t)> *body = nullptr;

    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};

    std::mutex mutex;
    std::condition_variable done;
    std::size_t activeSlots = 0;
    std::exception_ptr error;

    /** Drain chunks as logical worker `slot` until the loop is empty or
     *  cancelled; record the first exception and cancel on throw. */
    void runSlot(std::size_t slot)
    {
        {
            // Registered before any chunk claim: the caller cannot
            // return while a slot that may still dereference `body`
            // is in flight.
            std::lock_guard<std::mutex> lock(mutex);
            ++activeSlots;
        }
        for (;;) {
            if (cancelled.load(std::memory_order_relaxed))
                break;
            const std::size_t begin =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= count)
                break;
            const std::size_t end = std::min(begin + chunk, count);
            try {
                for (std::size_t i = begin; i != end; ++i) {
                    if (cancelled.load(std::memory_order_relaxed))
                        break;
                    (*body)(slot, i);
                }
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!error)
                        error = std::current_exception();
                }
                cancelled.store(true, std::memory_order_relaxed);
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            --activeSlots;
        }
        done.notify_all();
    }

    /** Caller-side completion: every index claimed (or the loop
     *  errored out) and no slot is still inside the body. Slots that
     *  never got scheduled don't count — once the work is drained they
     *  can only no-op. Callers must hold `mutex`. */
    bool finished()
    {
        if (activeSlots != 0)
            return false;
        if (error)
            return true;
        return next.load(std::memory_order_relaxed) >= count;
    }
};

} // namespace

WorkerPool::WorkerPool(std::size_t num_threads)
{
    if (num_threads == 0)
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    threads_.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t)
        threads_.emplace_back([this, t] { workerMain(t); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

std::vector<std::thread::id>
WorkerPool::threadIds() const
{
    std::vector<std::thread::id> ids;
    ids.reserve(threads_.size());
    for (const auto &t : threads_)
        ids.push_back(t.get_id());
    return ids;
}

void
WorkerPool::workerMain(std::size_t worker_index)
{
#if defined(__linux__)
    // Thread names are capped at 15 characters on Linux.
    char name[16];
    std::snprintf(name, sizeof(name), "archgym-w%zu", worker_index);
    pthread_setname_np(pthread_self(), name);
#else
    (void)worker_index;
#endif
    t_onWorkerThread = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
WorkerPool::parallelFor(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)> &body,
    std::size_t slots, std::size_t chunk)
{
    if (count == 0)
        return;
    if (slots == 0)
        slots = size();
    slots = std::max<std::size_t>(1, std::min(slots, count));
    chunk = std::max<std::size_t>(1, chunk);

    auto loop = std::make_shared<LoopState>();
    loop->count = count;
    loop->chunk = chunk;
    loop->body = &body;

    // The caller drains chunks as slot 0 alongside the pool: the loop is
    // guaranteed to make progress even when every pool thread is wedged
    // (e.g. a hung run blocking on a cooperative checkpoint). Queued
    // tasks that only get scheduled after the caller has finished the
    // loop find it drained and no-op — they hold the state alive via
    // the shared_ptr, never the caller's stack.
    if (slots > 1) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (std::size_t s = 1; s < slots; ++s)
                queue_.emplace_back([loop, s] { loop->runSlot(s); });
        }
        if (slots == 2)
            wake_.notify_one();
        else
            wake_.notify_all();
    }
    loop->runSlot(0);

    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->done.wait(lock, [&loop] { return loop->finished(); });
    if (loop->error)
        std::rethrow_exception(loop->error);
}

WorkerPool &
WorkerPool::shared()
{
    static WorkerPool pool;
    return pool;
}

bool
WorkerPool::onWorkerThread()
{
    return t_onWorkerThread;
}

} // namespace archgym
