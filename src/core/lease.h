/**
 * @file
 * Lease-based shard claiming for the cooperative sweep service.
 *
 * N independent worker processes (or threads) share one sweep
 * directory. A worker claims shard k by creating `shard_NNNN.lease`
 * with O_CREAT|O_EXCL *inside a critical section guarded by an flock
 * on `<dir>/sweep.lock`* — the exclusive-create covers well-behaved
 * local filesystems, the flock covers NFS-hostile ones where O_EXCL
 * is not reliably atomic, and the combination also serializes the
 * read-judge-steal sequence below. The lease file records the owner
 * (worker id, PID, acquisition nonce) and a monotonic heartbeat
 * timestamp that the owner refreshes on a cadence from a background
 * thread.
 *
 * A claimer that finds an existing lease reads it and judges it:
 *
 *  - unparseable (corrupt) lease        -> stale, steal immediately;
 *  - heartbeat older than the TTL       -> owner presumed dead, steal;
 *  - fresh heartbeat                    -> shard is busy, move on.
 *
 * Stealing unlinks the old lease and recreates it under the same
 * flock, so two claimers can never both "win" a steal. A stalled (but
 * live) owner may later discover it lost the lease — every heartbeat
 * re-reads the file under the flock and compares the acquisition
 * nonce; on mismatch the owner stops heartbeating and reports lost().
 * The sweep engine tolerates that race by construction: shard results
 * are deterministic and finalization is atomic-rename, so a doubly
 * executed shard converges to byte-identical files.
 *
 * Heartbeat timestamps come from the steady (monotonic) clock, which
 * on Linux is system-wide — comparisons are valid across processes on
 * one host. Cross-host deployments over a shared filesystem must set
 * the TTL well above both the heartbeat cadence and the worst-case
 * clock divergence; see docs/sweep_service.md for TTL tuning.
 *
 * Destruction semantics mirror crash behaviour on purpose: the
 * destructor stops the heartbeat thread but leaves the lease file in
 * place (exactly what a SIGKILL leaves behind), so an exception
 * unwinding through the sweep engine produces the same on-disk state
 * the reclamation path is tested against. Only release() — the
 * explicit happy-path call after the shard's results are renamed into
 * place — verifies ownership and unlinks the file.
 */

#ifndef ARCHGYM_CORE_LEASE_H
#define ARCHGYM_CORE_LEASE_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace archgym {

/** Claiming/heartbeat knobs of one worker. */
struct LeaseOptions
{
    std::string workerId;          ///< stable cooperative identity
    std::uint64_t ttlMs = 10000;   ///< heartbeat age that means "dead"
    std::uint64_t heartbeatMs = 0; ///< refresh cadence; 0 = ttlMs / 4
};

/** Parsed contents of a lease file. */
struct LeaseRecord
{
    std::string workerId;
    std::uint64_t pid = 0;
    std::uint64_t nonce = 0;       ///< unique per acquisition
    std::uint64_t sequence = 0;    ///< refresh counter
    std::uint64_t heartbeatNs = 0; ///< monotonic, last refresh
};

/**
 * Best-effort lease parse: false on missing or corrupt file (a
 * corrupt lease is treated as stale by claimers).
 */
bool readLeaseRecord(const std::string &path, LeaseRecord &out);

/** Monotonic now() in ns; honours FaultHooks::clockNowNs. */
std::uint64_t leaseClockNowNs();

/**
 * An owned shard lease: holds the heartbeat thread for its lifetime.
 * Obtain via tryAcquire(); it is not copyable or movable (the
 * heartbeat thread captures `this`).
 */
class ShardLease
{
  public:
    /**
     * Attempt to claim shard `shard` of sweep directory `dir`.
     * Returns null when a live peer holds the lease; otherwise the
     * acquired lease (freshly created, or stolen from a stale/corrupt
     * one — see stolen()). Throws std::runtime_error on I/O failure.
     */
    static std::unique_ptr<ShardLease>
    tryAcquire(const std::string &dir, std::size_t shard,
               const LeaseOptions &opts);

    /** Stops the heartbeat; leaves the lease file (crash semantics). */
    ~ShardLease();

    ShardLease(const ShardLease &) = delete;
    ShardLease &operator=(const ShardLease &) = delete;

    /**
     * Happy-path release: stop the heartbeat and unlink the lease,
     * but only if the file still records this acquisition (it may
     * have been stolen while we were stalled — then it is left for
     * its new owner).
     */
    void release();

    /** True when acquisition stole a stale or corrupt lease. */
    bool stolen() const { return stolen_; }

    /** True once a heartbeat found the lease no longer ours. */
    bool lost() const;

    const std::string &path() const { return leasePath_; }
    const std::string &workerId() const { return opts_.workerId; }

  private:
    ShardLease(std::string dir, std::string lease_path, LeaseOptions opts,
               std::uint64_t nonce, bool stolen);

    void heartbeatMain();
    /** Refresh or verify under the sweep flock; false = lease lost. */
    bool refreshLocked();
    void stopHeartbeat();

    std::string dir_;
    std::string leasePath_;
    LeaseOptions opts_;
    std::uint64_t nonce_ = 0;
    std::uint64_t sequence_ = 0;
    bool stolen_ = false;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    bool lost_ = false;
    bool released_ = false;
    std::thread heartbeat_;
};

} // namespace archgym

#endif // ARCHGYM_CORE_LEASE_H
