#include "fault_hooks.h"

namespace archgym {

FaultHooks &
faultHooks()
{
    static FaultHooks hooks;
    return hooks;
}

} // namespace archgym
