#include "hyperparams.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace archgym {

double
HyperParams::get(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
HyperParams::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : static_cast<std::int64_t>(
                                     std::llround(it->second));
}

bool
HyperParams::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

HyperParams &
HyperParams::set(const std::string &name, double value)
{
    values_[name] = value;
    return *this;
}

std::string
HyperParams::str() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[k, v] : values_) {
        if (!first)
            os << ",";
        os << k << "=" << v;
        first = false;
    }
    return os.str();
}

HyperGrid &
HyperGrid::add(const std::string &name, std::vector<double> values)
{
    assert(!values.empty());
    axes_.emplace_back(name, std::move(values));
    return *this;
}

std::size_t
HyperGrid::gridSize() const
{
    std::size_t n = 1;
    for (const auto &[name, values] : axes_)
        n *= values.size();
    return n;
}

std::vector<HyperParams>
HyperGrid::enumerate() const
{
    std::vector<HyperParams> out;
    const std::size_t total = gridSize();
    out.reserve(total);
    for (std::size_t idx = 0; idx < total; ++idx) {
        HyperParams hp;
        std::size_t rem = idx;
        for (const auto &[name, values] : axes_) {
            hp.set(name, values[rem % values.size()]);
            rem /= values.size();
        }
        out.push_back(std::move(hp));
    }
    return out;
}

std::vector<HyperParams>
HyperGrid::randomSample(std::size_t n, Rng &rng) const
{
    std::vector<HyperParams> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        HyperParams hp;
        for (const auto &[name, values] : axes_)
            hp.set(name, values[rng.below(values.size())]);
        out.push_back(std::move(hp));
    }
    return out;
}

} // namespace archgym
