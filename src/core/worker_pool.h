/**
 * @file
 * Persistent worker pool for lottery-scale sweeps.
 *
 * The paper's headline studies run tens of thousands of (agent config,
 * environment) experiments; spawning and joining a fresh std::thread per
 * sweep pays thread startup/teardown on every call. WorkerPool keeps a
 * fixed set of named threads alive for the process lifetime and exposes
 * a chunked parallelFor: logical worker slots drain contiguous index
 * chunks from one shared counter, so thousands of tiny runs do not all
 * contend on a single atomic, and slot-local state (one environment per
 * slot, built lazily by the caller) stays warm within a loop.
 *
 * Exceptions thrown by the loop body are captured in the pool and the
 * first one is rethrown on the calling thread once the loop has drained —
 * a worker failure can never silently corrupt a sweep or terminate the
 * process.
 */

#ifndef ARCHGYM_CORE_WORKER_POOL_H
#define ARCHGYM_CORE_WORKER_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace archgym {

class WorkerPool
{
  public:
    /** @param num_threads 0 = hardware concurrency (at least 1). */
    explicit WorkerPool(std::size_t num_threads = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Number of pool threads. */
    std::size_t size() const { return threads_.size(); }

    /** Identifiers of the pool threads (stable for the pool lifetime);
     *  lets callers verify that work really runs on pooled workers. */
    std::vector<std::thread::id> threadIds() const;

    /**
     * Chunked parallel loop: calls body(slot, index) for every index in
     * [0, count). `slots` logical workers (0 = pool size) each drain
     * contiguous chunks of `chunk` indices from a shared counter; `slot`
     * in [0, slots) identifies the logical worker, so callers can keep
     * worker-local state (e.g. one environment per slot) in a vector
     * indexed by it. Each slot runs on exactly one pool thread at a time,
     * so slot-local state needs no synchronization.
     *
     * Blocks until the loop completes. If any body call throws, the
     * remaining chunks are abandoned and the first exception is rethrown
     * here, on the calling thread.
     *
     * The calling thread participates as slot 0 and the remaining slots
     * are offered to the pool, so the loop always makes progress — even
     * when every pool thread is blocked (e.g. wedged inside a hung run).
     * Consequently the body may execute on the caller's thread, not only
     * on pool threads. Calling from inside a pool task is safe for the
     * same reason, but starves the outer loop of a thread; prefer
     * consulting onWorkerThread() and degrading to a serial path.
     */
    void
    parallelFor(std::size_t count,
                const std::function<void(std::size_t slot,
                                         std::size_t index)> &body,
                std::size_t slots = 0, std::size_t chunk = 1);

    /**
     * The process-wide pool, created on first use with one thread per
     * hardware core. runSweepParallel submits here, so consecutive
     * sweeps reuse the same workers.
     */
    static WorkerPool &shared();

    /**
     * True when the calling thread is owned by any WorkerPool (set for
     * the lifetime of the worker thread). A nested parallelFor from a
     * pool thread cannot deadlock (the caller drains the loop itself),
     * but it occupies a pool thread that the outer loop is waiting on,
     * so nested parallel constructs (e.g. a parallel
     * Environment::stepBatch inside runSweepParallel) consult this and
     * degrade to their serial path instead.
     */
    static bool onWorkerThread();

  private:
    void workerMain(std::size_t worker_index);

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace archgym

#endif // ARCHGYM_CORE_WORKER_POOL_H
