#include "toy_envs.h"

#include <cmath>
#include <numbers>

namespace archgym {

QuadraticEnv::QuadraticEnv(std::vector<double> optimum)
    : optimum_(std::move(optimum))
{
    for (std::size_t i = 0; i < optimum_.size(); ++i)
        space_.add(ParamDesc::integer("x" + std::to_string(i), 0, 31));
}

StepResult
QuadraticEnv::step(const Action &action)
{
    recordSample();
    double sq = 0.0;
    for (std::size_t i = 0; i < optimum_.size(); ++i) {
        const double d = action[i] - optimum_[i];
        sq += d * d;
    }
    StepResult sr;
    sr.observation = {sq};
    sr.reward = 1.0 / (1.0 + sq);
    sr.done = sq == 0.0;
    return sr;
}

OneMaxEnv::OneMaxEnv(std::size_t bits) : bits_(bits)
{
    for (std::size_t i = 0; i < bits_; ++i) {
        space_.add(ParamDesc::categorical("b" + std::to_string(i),
                                          {"off", "on"}));
    }
}

StepResult
OneMaxEnv::step(const Action &action)
{
    recordSample();
    double ones = 0.0;
    for (double a : action)
        ones += (a > 0.5) ? 1.0 : 0.0;
    StepResult sr;
    sr.observation = {ones};
    sr.reward = ones / static_cast<double>(bits_);
    sr.done = ones == static_cast<double>(bits_);
    return sr;
}

RastriginEnv::RastriginEnv(std::size_t dims)
{
    for (std::size_t i = 0; i < dims; ++i) {
        space_.add(ParamDesc::real("x" + std::to_string(i), -5.12, 5.12,
                                   0.04));
    }
}

StepResult
RastriginEnv::step(const Action &action)
{
    recordSample();
    double f = 0.0;
    for (double x : action) {
        f += x * x - 10.0 * std::cos(2.0 * std::numbers::pi * x) + 10.0;
    }
    StepResult sr;
    sr.observation = {f};
    sr.reward = -f;
    sr.done = f < 1e-9;
    return sr;
}

} // namespace archgym
