/**
 * @file
 * Minimal JSON rendering/scanning helpers shared by the on-disk
 * metadata writers (sweep manifest and result lines, columnar dataset
 * index, proxy screen record).
 *
 * These are deliberately NOT a general JSON library: the renderers
 * emit exactly the subset the readers accept, and the readers only
 * accept what this codebase itself writes — anything else throws
 * std::runtime_error naming the context and key. Doubles render in
 * shortest round-trip form (std::to_chars), so a JSON round trip is
 * value-exact.
 */

#ifndef ARCHGYM_CORE_JSONIO_H
#define ARCHGYM_CORE_JSONIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace archgym {
namespace jsonio {

/** Append the shortest round-trip rendering of v (from_chars-exact). */
void appendDouble(std::string &out, double v);

/** Minimal JSON string escaping for names/hyperparam strings. */
std::string escape(const std::string &s);

/**
 * Locate `"key":` in one of our own JSON documents starting at
 * `from` and return the position just past the colon. Throws with the
 * given context when the key is absent.
 */
std::size_t valuePos(const std::string &text, const std::string &key,
                     const std::string &context, std::size_t from = 0);

double doubleField(const std::string &text, const std::string &key,
                   const std::string &context, std::size_t from = 0);

std::uint64_t uintField(const std::string &text, const std::string &key,
                        const std::string &context, std::size_t from = 0);

std::string stringField(const std::string &text, const std::string &key,
                        const std::string &context, std::size_t from = 0);

std::vector<double> doubleArrayField(const std::string &text,
                                     const std::string &key,
                                     const std::string &context,
                                     std::size_t from = 0);

std::vector<std::uint64_t> uintArrayField(const std::string &text,
                                          const std::string &key,
                                          const std::string &context,
                                          std::size_t from = 0);

} // namespace jsonio
} // namespace archgym

#endif // ARCHGYM_CORE_JSONIO_H
