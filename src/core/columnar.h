/**
 * @file
 * Columnar dataset format for the proxy serving path.
 *
 * The CSV shard layout of core/trajectory.h is the durable, shareable
 * interchange format, but proxy training re-ingests it row-major and
 * whole-file. This module adds a binary columnar companion built for
 * serving: per-column blocks grouped into *row groups*, plus a JSON
 * row-group index, so training can minibatch-sample without loading
 * every transition. `Dataset::loadDirectory` stays the reference
 * reader — the equivalence suite asserts the columnar view of a
 * converted directory is value-identical to it (binary doubles, so in
 * fact bit-identical).
 *
 * ## On-disk layout
 *
 * A columnar dataset is a `<stem>.colbin` / `<stem>.colidx` pair:
 *
 *  - `<stem>.colbin` — raw little-endian doubles, one *row group* after
 *    another. A row group holds up to rowsPerGroup transitions from a
 *    single trajectory (groups never span trajectories, so each group
 *    has one env/agent/hyperparams identity; long trajectories split
 *    into several groups flagged as continuations). Within a group the
 *    columns are contiguous, in schema order:
 *
 *        action dim 0 (rows doubles), ..., action dim D-1,
 *        metric 0, ..., metric M-1,
 *        reward
 *
 *  - `<stem>.colidx` — JSON index: format version, action dims, metric
 *    names, total rows, and one entry per group (byte offset, row
 *    count, FNV-1a checksum of the group's bytes, env/agent/hyper
 *    metadata, continuation flag). The index is written via
 *    fsio::atomicWriteFile at close() and is the dataset's commit
 *    point: a crash before it leaves only an orphan .colbin that no
 *    reader will touch.
 *
 * The reader parses only the index up front; loadGroup() seeks and
 * checksums one group, and sampleMinibatch() draws row indices first,
 * then reads just the touched groups — cost scales with the minibatch,
 * not the dataset. See docs/proxy_serving.md.
 */

#ifndef ARCHGYM_CORE_COLUMNAR_H
#define ARCHGYM_CORE_COLUMNAR_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/param_space.h"
#include "core/trajectory.h"
#include "mathutil/rng.h"

namespace archgym {

/** Index entry of one row group. */
struct ColumnarGroupMeta
{
    std::uint64_t offset = 0; ///< byte offset into the .colbin
    std::uint64_t rows = 0;
    std::uint64_t crc = 0;    ///< fnv1a64 of the group's bytes
    std::string envName;
    std::string agentName;
    std::string hyperParams;
    /** True when this group continues the previous group's trajectory
     *  (a log longer than rowsPerGroup); false when it starts one. */
    bool continuation = false;
};

/**
 * Column-major slab of transitions — the in-memory shape of one or
 * more row groups (or a minibatch). Column c of `actions` occupies
 * [c * rows, (c+1) * rows), likewise per-metric `observations`.
 */
struct TransitionColumns
{
    std::size_t rows = 0;
    std::size_t actionDims = 0;
    std::vector<std::string> metricNames;
    std::vector<double> actions;      ///< column-major, dims x rows
    std::vector<double> observations; ///< column-major, metrics x rows
    std::vector<double> rewards;      ///< rows

    double action(std::size_t r, std::size_t d) const
    {
        return actions[d * rows + r];
    }
    double observation(std::size_t r, std::size_t m) const
    {
        return observations[m * rows + r];
    }

    /** Row-major view for consumers of the reference Transition shape. */
    std::vector<Transition> toTransitions() const;
};

/**
 * Streams trajectories into a columnar pair. Rows buffer per group and
 * flush as each group fills; close() fsyncs the data file and commits
 * the index atomically. Not thread-safe (one writer per stem).
 */
class ColumnarDatasetWriter
{
  public:
    /**
     * @param stem           output path stem (directory must exist);
     *                       writes <stem>.colbin + <stem>.colidx
     * @param space          action space (fixes the action column count)
     * @param metric_names   observation schema
     * @param rows_per_group maximum transitions per row group
     */
    ColumnarDatasetWriter(const std::string &stem, const ParamSpace &space,
                          std::vector<std::string> metric_names,
                          std::size_t rows_per_group = 1024);
    ~ColumnarDatasetWriter();

    ColumnarDatasetWriter(const ColumnarDatasetWriter &) = delete;
    ColumnarDatasetWriter &operator=(const ColumnarDatasetWriter &) = delete;

    /** Append every transition of one trajectory (empty logs are
     *  skipped). Throws on schema mismatch. */
    void append(const TrajectoryLog &log);

    /** Flush the open group, fsync the data file, atomically write the
     *  index. Idempotent; the destructor calls it if still open. */
    void close();

    std::size_t rowsWritten() const { return totalRows_; }

    static std::string dataPath(const std::string &stem);
    static std::string indexPath(const std::string &stem);

  private:
    void flushGroup();

    const std::string stem_;
    const std::size_t actionDims_;
    const std::vector<std::string> metricNames_;
    const std::size_t rowsPerGroup_;
    std::ofstream out_;
    std::vector<ColumnarGroupMeta> groups_;
    std::uint64_t bytesWritten_ = 0;
    std::size_t totalRows_ = 0;
    // Current (unflushed) group.
    std::vector<std::vector<double>> pendingCols_; ///< D+M+1 columns
    std::string pendingEnv_, pendingAgent_, pendingHyper_;
    bool pendingContinuation_ = false;
    bool open_ = true;
};

/**
 * Index-backed reader. open() parses only the .colidx; group data is
 * read (and checksum-validated) on demand, so sampling a minibatch
 * touches only the groups the drawn rows land in.
 */
class ColumnarDatasetReader
{
  public:
    /** Parse <stem>.colidx; throws std::runtime_error when the index is
     *  missing or malformed (naming the offending field). */
    static ColumnarDatasetReader open(const std::string &stem);

    std::size_t rowCount() const { return totalRows_; }
    std::size_t groupCount() const { return groups_.size(); }
    std::size_t actionDims() const { return actionDims_; }
    const std::vector<std::string> &metricNames() const
    {
        return metricNames_;
    }
    const ColumnarGroupMeta &group(std::size_t i) const
    {
        return groups_[i];
    }

    /** Read one row group (seek + one contiguous read + crc check). */
    TransitionColumns loadGroup(std::size_t i) const;

    /**
     * Gather arbitrary global row indices (dataset row order = the
     * reference reader's flatten() order). Each touched group is read
     * once; output row r is global row `rows[r]`.
     */
    TransitionColumns gatherRows(const std::vector<std::size_t> &rows) const;

    /**
     * Draw an n-row minibatch: without replacement when n <= rowCount()
     * (sparse Fisher-Yates — O(n) state, no full-index shuffle), with
     * replacement otherwise, mirroring Dataset::sample's contract. Only
     * the row groups containing drawn rows are read, so the cost scales
     * with n and the groups it touches, not with rowCount().
     */
    TransitionColumns sampleMinibatch(std::size_t n, Rng &rng) const;

    /** sampleMinibatch in the reference Transition shape. */
    std::vector<Transition> sampleTransitions(std::size_t n, Rng &rng) const;

    /** Every transition, in reference (flatten) order. */
    std::vector<Transition> loadAllTransitions() const;

    /**
     * Reassemble the full Dataset (trajectory structure restored from
     * the continuation flags) — for consumers of the per-agent
     * composition APIs (sampleDiverse, flattenAgent).
     */
    Dataset toDataset() const;

  private:
    ColumnarDatasetReader() = default;

    std::string dataPath_;
    std::size_t actionDims_ = 0;
    std::vector<std::string> metricNames_;
    std::vector<ColumnarGroupMeta> groups_;
    std::vector<std::size_t> groupStartRow_; ///< prefix sums, +sentinel
    std::size_t totalRows_ = 0;
};

/**
 * Convert a CSV dataset directory (sharded sweep exports included) into
 * a columnar pair at `stem`, reading through the reference
 * Dataset::loadDirectory so row order matches its flatten() exactly.
 * Returns the number of rows written.
 */
std::size_t
writeColumnarFromCsvDirectory(const std::string &directory,
                              const std::string &stem,
                              const ParamSpace &space,
                              const std::vector<std::string> &metric_names,
                              std::size_t rows_per_group = 1024);

} // namespace archgym

#endif // ARCHGYM_CORE_COLUMNAR_H
