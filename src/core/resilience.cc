#include "resilience.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <vector>

#include "core/lease.h"

namespace archgym {

std::uint64_t
attemptBackoffMs(const RunAttemptPolicy &policy, std::uint64_t seed,
                 std::size_t attempt)
{
    if (attempt == 0 || policy.backoffBaseMs == 0)
        return 0;
    double delay = static_cast<double>(policy.backoffBaseMs);
    for (std::size_t k = 1; k < attempt; ++k) {
        delay *= policy.backoffMultiplier;
        if (delay >= static_cast<double>(policy.backoffMaxMs))
            break;
    }
    delay = std::min(delay, static_cast<double>(policy.backoffMaxMs));

    // splitmix64 over (seed, attempt): stateless deterministic jitter.
    std::uint64_t z =
        seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double unit =
        static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
    const double jitter =
        1.0 + policy.jitterFraction * (2.0 * unit - 1.0);
    return static_cast<std::uint64_t>(
        std::llround(delay * std::max(0.0, jitter)));
}

namespace resilience {

struct CancelState : std::enable_shared_from_this<CancelState>
{
    std::atomic<std::uint64_t> deadlineNs{0};  ///< 0 = no deadline
    std::uint64_t deadlineMs = 0;              ///< for the error message
    std::atomic<bool> expired{false};
    std::string workerId;
};

namespace {

thread_local CancelState *t_active = nullptr;

/**
 * Watchdog registry: every armed deadline, keyed by worker id. Guarded
 * by one mutex — entries change once per run attempt and heartbeat
 * threads poll once per beat, so contention is negligible.
 */
struct WatchdogRegistry
{
    std::mutex mutex;
    std::vector<CancelState *> entries;
};

WatchdogRegistry &
watchdog()
{
    static WatchdogRegistry reg;
    return reg;
}

void
registerDeadline(CancelState *state)
{
    WatchdogRegistry &reg = watchdog();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.entries.push_back(state);
}

void
unregisterDeadline(CancelState *state)
{
    WatchdogRegistry &reg = watchdog();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.entries.erase(
        std::remove(reg.entries.begin(), reg.entries.end(), state),
        reg.entries.end());
}

} // namespace

CancelScope::CancelScope(const std::string &worker_id,
                         std::uint64_t deadline_ms)
    : state_(std::make_shared<CancelState>())
{
    state_->workerId = worker_id;
    if (deadline_ms > 0) {
        state_->deadlineMs = deadline_ms;
        state_->deadlineNs.store(leaseClockNowNs() +
                                     deadline_ms * 1000000ULL,
                                 std::memory_order_relaxed);
        if (!worker_id.empty()) {
            registerDeadline(state_.get());
            registered_ = true;
        }
    }
    prev_ = t_active;
    t_active = state_.get();
}

CancelScope::~CancelScope()
{
    t_active = prev_;
    if (registered_)
        unregisterDeadline(state_.get());
}

AdoptCancelScope::AdoptCancelScope(std::shared_ptr<CancelState> state)
    : state_(std::move(state))
{
    if (state_) {
        prev_ = t_active;
        t_active = state_.get();
        installed_ = true;
    }
}

AdoptCancelScope::~AdoptCancelScope()
{
    if (installed_)
        t_active = prev_;
}

std::shared_ptr<CancelState>
currentCancelState()
{
    CancelState *st = t_active;
    if (!st)
        return nullptr;
    return st->shared_from_this();
}

void
checkpoint()
{
    CancelState *st = t_active;
    if (!st)
        return;
    const std::uint64_t deadline =
        st->deadlineNs.load(std::memory_order_relaxed);
    if (deadline == 0)
        return;
    if (leaseClockNowNs() >= deadline) {
        st->expired.store(true, std::memory_order_relaxed);
        throw RunTimeout(st->deadlineMs);
    }
}

bool
deadlineExpired() noexcept
{
    CancelState *st = t_active;
    if (!st)
        return false;
    const std::uint64_t deadline =
        st->deadlineNs.load(std::memory_order_relaxed);
    return deadline != 0 && leaseClockNowNs() >= deadline;
}

bool
workerHasExpiredRun(const std::string &worker_id)
{
    WatchdogRegistry &reg = watchdog();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.entries.empty())
        return false;
    const std::uint64_t now = leaseClockNowNs();
    for (const CancelState *st : reg.entries) {
        if (st->workerId != worker_id)
            continue;
        const std::uint64_t deadline =
            st->deadlineNs.load(std::memory_order_relaxed);
        if (deadline != 0 && now >= deadline)
            return true;
    }
    return false;
}

} // namespace resilience

} // namespace archgym
