/**
 * @file
 * The ArchGym environment interface.
 *
 * An environment encapsulates an architecture cost model plus target
 * workload(s) (paper §3.1). The gym-style contract mirrors OpenAI gym's
 * step() but is agent-agnostic: the same signals serve RL rewards, GA/ACO
 * fitness, and BO objective values (paper §3.3, Table 2).
 *
 *  - action:       concrete parameter selection (see ParamSpace)
 *  - observation:  cost-model outputs, e.g. <latency, power, energy>
 *  - reward:       scalar feedback derived from the observation by the
 *                  environment's Objective (Table 3)
 */

#ifndef ARCHGYM_CORE_ENVIRONMENT_H
#define ARCHGYM_CORE_ENVIRONMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/param_space.h"

namespace archgym {

/** Cost-model outputs for one evaluated design point. */
using Metrics = std::vector<double>;

/** Result of evaluating one action in an environment. */
struct StepResult
{
    Metrics observation;  ///< cost-model outputs, see metricNames()
    double reward = 0.0;  ///< scalar feedback (fitness) for the agent
    bool done = false;    ///< search-termination hint (target reached)
};

/**
 * Abstract ArchGym environment: the 'ArchitectureFoo' of Fig. 1.
 *
 * Concrete environments (DramGymEnv, TimeloopGymEnv, FarsiGymEnv,
 * MaestroGymEnv) wrap a cost model, a workload, a parameter space, and an
 * objective. step() is stateless with respect to the search: each call
 * evaluates one design point, so agents may be freely exchanged.
 */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Environment identifier, e.g. "DRAMGym". */
    virtual const std::string &name() const = 0;

    /** The tunable architecture parameters. */
    virtual const ParamSpace &actionSpace() const = 0;

    /** Names of the observation entries, e.g. {latency, power, energy}. */
    virtual const std::vector<std::string> &metricNames() const = 0;

    /** Reset any episodic state; called once before a search run. */
    virtual void reset() {}

    /** Evaluate one design point. */
    virtual StepResult step(const Action &action) = 0;

    /** Number of cost-model evaluations performed so far. */
    std::uint64_t sampleCount() const { return sampleCount_; }

  protected:
    /** Concrete environments call this once per cost-model evaluation. */
    void recordSample() { ++sampleCount_; }

  private:
    std::uint64_t sampleCount_ = 0;
};

} // namespace archgym

#endif // ARCHGYM_CORE_ENVIRONMENT_H
