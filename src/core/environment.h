/**
 * @file
 * The ArchGym environment interface.
 *
 * An environment encapsulates an architecture cost model plus target
 * workload(s) (paper §3.1). The gym-style contract mirrors OpenAI gym's
 * step() but is agent-agnostic: the same signals serve RL rewards, GA/ACO
 * fitness, and BO objective values (paper §3.3, Table 2).
 *
 *  - action:       concrete parameter selection (see ParamSpace)
 *  - observation:  cost-model outputs, e.g. <latency, power, energy>
 *  - reward:       scalar feedback derived from the observation by the
 *                  environment's Objective (Table 3)
 */

#ifndef ARCHGYM_CORE_ENVIRONMENT_H
#define ARCHGYM_CORE_ENVIRONMENT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/param_space.h"

namespace archgym {

/** Cost-model outputs for one evaluated design point. */
using Metrics = std::vector<double>;

/** Result of evaluating one action in an environment. */
struct StepResult
{
    Metrics observation;  ///< cost-model outputs, see metricNames()
    double reward = 0.0;  ///< scalar feedback (fitness) for the agent
    bool done = false;    ///< search-termination hint (target reached)
};

/**
 * Abstract ArchGym environment: the 'ArchitectureFoo' of Fig. 1.
 *
 * Concrete environments (DramGymEnv, TimeloopGymEnv, FarsiGymEnv,
 * MaestroGymEnv) wrap a cost model, a workload, a parameter space, and an
 * objective. step() is stateless with respect to the search: each call
 * evaluates one design point, so agents may be freely exchanged.
 */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Environment identifier, e.g. "DRAMGym". */
    virtual const std::string &name() const = 0;

    /** The tunable architecture parameters. */
    virtual const ParamSpace &actionSpace() const = 0;

    /** Names of the observation entries, e.g. {latency, power, energy}. */
    virtual const std::vector<std::string> &metricNames() const = 0;

    /** Reset any episodic state; called once before a search run. */
    virtual void reset() {}

    /** Evaluate one design point. */
    virtual StepResult step(const Action &action) = 0;

    /**
     * Evaluate a batch of design points — the vectorized entry point for
     * population-based agents (GA / ACO evaluate whole generations at
     * once) and batched sweeps.
     *
     * Contract (binding for every override):
     *
     *  - Ordering: the result at index i is the evaluation of
     *    actions[i]. The returned vector always has actions.size()
     *    entries; an empty batch returns an empty vector and performs no
     *    evaluation.
     *  - Determinism: results are bit-identical to calling step() on
     *    each action sequentially, for every batchWorkers() setting and
     *    regardless of how the worker pool schedules slots onto
     *    threads. Each action must therefore be evaluated independently
     *    of its batch neighbours and of scheduling order.
     *  - Sample accounting: sampleCount() advances by exactly
     *    actions.size(), the same as the sequential path.
     *  - Thread-safety (for implementers): a parallel override may share
     *    only immutable state across worker slots (the decoded-once
     *    workload views, the parameter space, the objective); all
     *    mutable evaluation state (simulator instances, scratch
     *    buffers) must be per-slot, indexed by the slot id the pool
     *    hands the body. recordSamples() must be called once, on the
     *    calling thread, after the loop completes.
     *  - Reentrancy: when invoked from inside a WorkerPool task (e.g. a
     *    batched search running under runSweepParallel), overrides must
     *    not submit nested parallelFor work; parallelEvalBatch()
     *    detects this and reports that the caller should evaluate
     *    serially instead.
     *
     * The default implementation is the serial fallback: step() per
     * action, in order. DramGymEnv, FarsiGymEnv, TimeloopGymEnv and
     * MaestroGymEnv override it with parallel fan-out over
     * WorkerPool::shared().
     */
    virtual std::vector<StepResult>
    stepBatch(const std::vector<Action> &actions);

    /**
     * Cap the number of logical worker slots a parallel stepBatch may
     * use. 0 (default) = one slot per shared-pool thread. Values above
     * the pool size are honoured with that many slots multiplexed onto
     * the pool's threads (useful for determinism tests at fixed slot
     * counts on any machine); 1 forces serial evaluation.
     */
    void setBatchWorkers(std::size_t workers) { batchWorkers_ = workers; }
    std::size_t batchWorkers() const { return batchWorkers_; }

    /** Number of cost-model evaluations performed so far. */
    std::uint64_t sampleCount() const { return sampleCount_; }

  protected:
    /** Concrete environments call this once per cost-model evaluation. */
    void recordSample() { ++sampleCount_; }

    /** Batched overrides call this once per completed batch. */
    void recordSamples(std::size_t n) { sampleCount_ += n; }

    /**
     * Fan body(slot, index) for index in [0, count) out over
     * WorkerPool::shared(), honouring batchWorkers(). Work is handed
     * out as contiguous chunks of ceil(count/slots) indices — one pool
     * handoff per slot, not per item — which matters on environments
     * whose step is microseconds; determinism is unaffected because
     * each index is evaluated independently of chunk geometry. Before
     * any work runs, prepare(slots) is invoked once on the calling
     * thread with the slot count so the environment can size per-slot
     * evaluation state (prepare may be null when no mutable state is
     * needed).
     *
     * Returns false — without running anything — when parallel
     * evaluation is unprofitable or unsafe (batch of zero/one, a single
     * worker slot, or the calling thread is itself a pool worker); the
     * caller must then fall back to the serial default
     * Environment::stepBatch.
     */
    bool parallelEvalBatch(
        std::size_t count,
        const std::function<void(std::size_t slot, std::size_t index)>
            &body,
        const std::function<void(std::size_t slots)> &prepare =
            nullptr) const;

  private:
    std::uint64_t sampleCount_ = 0;
    std::size_t batchWorkers_ = 0;  ///< 0 = shared pool size
};

} // namespace archgym

#endif // ARCHGYM_CORE_ENVIRONMENT_H
