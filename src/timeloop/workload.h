/**
 * @file
 * CNN workload descriptors for the DNN-accelerator environments.
 *
 * The paper drives TimeloopGym with CNNs converted via Pytorch2Timeloop
 * (AlexNet, MobileNet, ResNet-50). Here each network is a curated list of
 * representative convolution layers with the standard 7-loop nest
 * dimensions.
 */

#ifndef ARCHGYM_TIMELOOP_WORKLOAD_H
#define ARCHGYM_TIMELOOP_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace archgym::timeloop {

/** One convolution layer: output[n][k][p][q] += in[n][c][..]*w[k][c][r][s]. */
struct ConvLayer
{
    std::string name;
    std::uint32_t batch = 1;     ///< N
    std::uint32_t inChannels = 1;  ///< C
    std::uint32_t outChannels = 1; ///< K
    std::uint32_t kernelH = 1;   ///< R
    std::uint32_t kernelW = 1;   ///< S
    std::uint32_t outH = 1;      ///< P
    std::uint32_t outW = 1;      ///< Q
    std::uint32_t stride = 1;

    std::uint32_t inputH() const { return (outH - 1) * stride + kernelH; }
    std::uint32_t inputW() const { return (outW - 1) * stride + kernelW; }

    /** Multiply-accumulate operations. */
    double macs() const;
    /** Element counts of each operand tensor. */
    double weightCount() const;
    double inputCount() const;
    double outputCount() const;
};

/** A named set of layers. */
struct Network
{
    std::string name;
    std::vector<ConvLayer> layers;

    double totalMacs() const;
};

/** Representative layer subsets of the paper's evaluation networks. */
Network alexNet();
Network mobileNet();
Network resNet50();
Network resNet18();
Network vgg16();

} // namespace archgym::timeloop

#endif // ARCHGYM_TIMELOOP_WORKLOAD_H
