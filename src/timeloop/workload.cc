#include "workload.h"

namespace archgym::timeloop {

double
ConvLayer::macs() const
{
    return static_cast<double>(batch) * outChannels * inChannels *
           kernelH * kernelW * outH * outW;
}

double
ConvLayer::weightCount() const
{
    return static_cast<double>(outChannels) * inChannels * kernelH *
           kernelW;
}

double
ConvLayer::inputCount() const
{
    return static_cast<double>(batch) * inChannels * inputH() * inputW();
}

double
ConvLayer::outputCount() const
{
    return static_cast<double>(batch) * outChannels * outH * outW;
}

double
Network::totalMacs() const
{
    double total = 0.0;
    for (const auto &l : layers)
        total += l.macs();
    return total;
}

namespace {

ConvLayer
conv(std::string name, std::uint32_t c, std::uint32_t k, std::uint32_t r,
     std::uint32_t s, std::uint32_t p, std::uint32_t q,
     std::uint32_t stride = 1)
{
    ConvLayer l;
    l.name = std::move(name);
    l.batch = 1;
    l.inChannels = c;
    l.outChannels = k;
    l.kernelH = r;
    l.kernelW = s;
    l.outH = p;
    l.outW = q;
    l.stride = stride;
    return l;
}

} // namespace

Network
alexNet()
{
    Network net;
    net.name = "AlexNet";
    net.layers = {
        conv("conv1", 3, 96, 11, 11, 55, 55, 4),
        conv("conv2", 96, 256, 5, 5, 27, 27),
        conv("conv3", 256, 384, 3, 3, 13, 13),
        conv("conv4", 384, 384, 3, 3, 13, 13),
        conv("conv5", 384, 256, 3, 3, 13, 13),
    };
    return net;
}

Network
mobileNet()
{
    // Depthwise-separable blocks: the depthwise stage is modeled as a
    // grouped conv with C=1 per filter (captured by inChannels=1 and K
    // filters), which preserves its low arithmetic intensity.
    Network net;
    net.name = "MobileNet";
    net.layers = {
        conv("conv1", 3, 32, 3, 3, 112, 112, 2),
        conv("dw2", 1, 32, 3, 3, 112, 112),
        conv("pw2", 32, 64, 1, 1, 112, 112),
        conv("dw3", 1, 64, 3, 3, 56, 56, 2),
        conv("pw3", 64, 128, 1, 1, 56, 56),
        conv("dw4", 1, 128, 3, 3, 28, 28, 2),
        conv("pw4", 128, 256, 1, 1, 28, 28),
        conv("pw5", 256, 512, 1, 1, 14, 14),
    };
    return net;
}

Network
resNet50()
{
    Network net;
    net.name = "ResNet-50";
    net.layers = {
        conv("conv1", 3, 64, 7, 7, 112, 112, 2),
        conv("res2a_1x1", 64, 64, 1, 1, 56, 56),
        conv("res2a_3x3", 64, 64, 3, 3, 56, 56),
        conv("res2a_out", 64, 256, 1, 1, 56, 56),
        conv("res3a_3x3", 128, 128, 3, 3, 28, 28),
        conv("res4a_3x3", 256, 256, 3, 3, 14, 14),
        conv("res5a_3x3", 512, 512, 3, 3, 7, 7),
        conv("res5a_out", 512, 2048, 1, 1, 7, 7),
    };
    return net;
}

Network
resNet18()
{
    Network net;
    net.name = "ResNet-18";
    net.layers = {
        conv("conv1", 3, 64, 7, 7, 112, 112, 2),
        conv("res2_3x3", 64, 64, 3, 3, 56, 56),
        conv("res3_3x3", 128, 128, 3, 3, 28, 28),
        conv("res4_3x3", 256, 256, 3, 3, 14, 14),
        conv("res5_3x3", 512, 512, 3, 3, 7, 7),
    };
    return net;
}

Network
vgg16()
{
    Network net;
    net.name = "VGG16";
    net.layers = {
        conv("conv1_1", 3, 64, 3, 3, 224, 224),
        conv("conv1_2", 64, 64, 3, 3, 224, 224),
        conv("conv2_1", 64, 128, 3, 3, 112, 112),
        conv("conv3_1", 128, 256, 3, 3, 56, 56),
        conv("conv4_1", 256, 512, 3, 3, 28, 28),
        conv("conv5_1", 512, 512, 3, 3, 14, 14),
    };
    return net;
}

} // namespace archgym::timeloop
