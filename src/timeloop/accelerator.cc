#include "accelerator.h"

#include <sstream>

namespace archgym::timeloop {

std::string
AcceleratorConfig::str() const
{
    std::ostringstream os;
    os << "pes=" << numPEs << " wspad=" << weightSpadEntries
       << " ispad=" << inputSpadEntries << " aspad=" << accumSpadEntries
       << " gb=" << globalBufferKb << "KB noc=" << nocWordsPerCycle
       << " dram=" << dramWordsPerCycle;
    return os.str();
}

double
areaMm2(const AcceleratorConfig &config, const TechModel &tech)
{
    const double spadWords =
        static_cast<double>(config.numPEs) *
        (config.weightSpadEntries + config.inputSpadEntries +
         config.accumSpadEntries);
    return tech.baseAreaMm2 +
           static_cast<double>(config.numPEs) * tech.peAreaMm2 +
           spadWords * tech.spadAreaMm2PerWord +
           static_cast<double>(config.globalBufferKb) *
               tech.bufferAreaMm2PerKb;
}

} // namespace archgym::timeloop
