#include "cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/resilience.h"

namespace archgym::timeloop {

namespace {

/** Power-of-two tile candidates up to (and including) a cap. */
std::vector<std::uint32_t>
tileCandidates(std::uint32_t dim)
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t t = 1; t < dim; t *= 2)
        out.push_back(t);
    out.push_back(dim);
    return out;
}

struct MappingCost
{
    double dramWords = std::numeric_limits<double>::infinity();
    double gbWords = 0.0;
    double spadWords = 0.0;
    double computeCycles = 0.0;
    double utilization = 0.0;
};

/**
 * Evaluate one (tileK, tileC, tileP) candidate. The loop nest keeps a
 * weight tile resident in the scratchpads while streaming input/output
 * tiles through the global buffer (weight-stationary outer loop).
 */
bool
evaluateMapping(const AcceleratorConfig &cfg, const ConvLayer &l,
                std::uint32_t tk, std::uint32_t tc, std::uint32_t tp,
                MappingCost &out)
{
    const double pes = cfg.numPEs;

    // --- capacity checks ---------------------------------------------
    // Weight tile is distributed across the PE array.
    const double weightTile = static_cast<double>(tk) * tc * l.kernelH *
                              l.kernelW;
    const double weightCap =
        pes * static_cast<double>(cfg.weightSpadEntries);
    if (weightTile > weightCap)
        return false;

    // Input rows for one output-tile row and psum tile per PE.
    const double inputTileRows =
        (static_cast<double>(tp - 1) * l.stride + l.kernelH);
    const double inputTile = static_cast<double>(tc) * inputTileRows *
                             l.inputW();
    const double outputTile = static_cast<double>(tk) * tp * l.outW;
    const double gbWordsCap = static_cast<double>(cfg.globalBufferKb) *
                              1024.0 / 2.0;  // 16-bit words
    if (inputTile + outputTile > gbWordsCap)
        return false;
    const double psumPerPe = outputTile / pes;
    if (psumPerPe > cfg.accumSpadEntries)
        return false;

    // --- trip counts ---------------------------------------------------
    const double passesK = std::ceil(static_cast<double>(l.outChannels) /
                                     tk);
    const double passesC = std::ceil(static_cast<double>(l.inChannels) /
                                     tc);
    const double passesP = std::ceil(static_cast<double>(l.outH) / tp);
    const double batch = l.batch;

    // --- DRAM traffic (words) ------------------------------------------
    // Weights: one fetch per (K, C) tile, reused across all output tiles
    // of the layer (weight-stationary).
    const double weightDram = l.weightCount();
    // Inputs: refetched once per K-tile pass (outputs of different K
    // tiles need the same inputs again).
    const double inputDram = l.inputCount() * passesK;
    // Outputs: written once; partial sums spill once per extra C pass.
    const double outputDram = l.outputCount() * (2.0 * passesC - 1.0);
    const double dram = weightDram + inputDram + outputDram;

    // --- Global-buffer traffic ------------------------------------------
    // All DRAM traffic passes through the GB, plus array-side reuse
    // traffic: every input element is multicast to the PEs needing it
    // once per (K tile, P tile) pass, so GB input traffic scales with
    // both the K and the P trip counts.
    const double gb = dram + l.inputCount() * passesK * passesP +
                      l.outputCount() * passesC;

    // --- Scratchpad traffic (dominant: 3 words per MAC) ----------------
    const double spad = 3.0 * l.macs();

    // --- Compute -------------------------------------------------------
    // Spatial mapping: K x P unrolled across the array.
    const double spatial = std::min(pes, static_cast<double>(tk) * tp);
    const double util = spatial / pes;
    const double compute = l.macs() / std::max(1.0, spatial);

    out.dramWords = dram * batch;
    out.gbWords = gb * batch;
    out.spadWords = spad;
    out.computeCycles = compute;
    out.utilization = util;
    return true;
}

} // namespace

LayerCost
evaluateLayer(const AcceleratorConfig &config, const ConvLayer &layer,
              const TechModel &tech)
{
    MappingCost best;
    bool found = false;
    double bestScore = std::numeric_limits<double>::infinity();

    for (std::uint32_t tk : tileCandidates(layer.outChannels)) {
        // Cooperative run deadline: the mapper enumeration is the
        // layer-evaluation hot loop (core/resilience.h).
        resilience::checkpoint();
        for (std::uint32_t tc : tileCandidates(layer.inChannels)) {
            for (std::uint32_t tp : tileCandidates(layer.outH)) {
                MappingCost mc;
                if (!evaluateMapping(config, layer, tk, tc, tp, mc))
                    continue;
                // Rank mappings by a DRAM-energy-dominated score, the
                // same first-order criterion Timeloop's mapper optimizes.
                const double score =
                    mc.dramWords * tech.dramPj +
                    mc.gbWords * tech.globalBufferPj +
                    mc.computeCycles;
                if (score < bestScore) {
                    bestScore = score;
                    best = mc;
                    found = true;
                }
            }
        }
    }

    if (!found) {
        // Degenerate fallback: stream everything, minimal tiles.
        best.dramWords = layer.macs() * 3.0;
        best.gbWords = best.dramWords;
        best.spadWords = 3.0 * layer.macs();
        best.computeCycles = layer.macs() /
                             std::max(1.0,
                                      static_cast<double>(config.numPEs));
        best.utilization = 1.0 / config.numPEs;
    }

    LayerCost cost;
    const double dramCycles =
        best.dramWords / std::max(1u, config.dramWordsPerCycle);
    const double nocCycles =
        best.gbWords / std::max(1u, config.nocWordsPerCycle);
    cost.cycles = std::max({best.computeCycles, dramCycles, nocCycles});
    cost.latencyMs = cost.cycles / (config.clockGhz * 1e6);
    cost.utilization = best.utilization;
    cost.dramAccesses = best.dramWords;
    cost.bufferAccesses = best.gbWords;
    cost.spadAccesses = best.spadWords;
    cost.areaMm2 = areaMm2(config, tech);

    const double dynamicPj = best.dramWords * tech.dramPj +
                             best.gbWords * tech.globalBufferPj +
                             best.spadWords * tech.spadPj +
                             layer.macs() * tech.macPj +
                             best.gbWords * tech.nocPjPerHop;
    const double leakagePj = cost.areaMm2 * tech.leakageMwPerMm2 *
                             (cost.cycles / config.clockGhz);  // mW * ns
    cost.energyUj = (dynamicPj + leakagePj) / 1e6;
    return cost;
}

LayerCost
evaluateNetwork(const AcceleratorConfig &config, const Network &network,
                const TechModel &tech)
{
    LayerCost total;
    total.areaMm2 = areaMm2(config, tech);
    double utilWeighted = 0.0;
    for (const auto &layer : network.layers) {
        const LayerCost c = evaluateLayer(config, layer, tech);
        total.cycles += c.cycles;
        total.latencyMs += c.latencyMs;
        total.energyUj += c.energyUj;
        total.dramAccesses += c.dramAccesses;
        total.bufferAccesses += c.bufferAccesses;
        total.spadAccesses += c.spadAccesses;
        utilWeighted += c.utilization * c.cycles;
    }
    total.utilization =
        total.cycles > 0.0 ? utilWeighted / total.cycles : 0.0;
    return total;
}

LayerView::LayerView(const ConvLayer &l)
    : layer(l), tilesK(tileCandidates(l.outChannels)),
      tilesC(tileCandidates(l.inChannels)),
      tilesP(tileCandidates(l.outH)), macs(l.macs()),
      weightCount(l.weightCount()), inputCount(l.inputCount()),
      outputCount(l.outputCount()), inputW(l.inputW()),
      spadWords(3.0 * l.macs())
{
}

NetworkView::NetworkView(const Network &network) : name_(network.name)
{
    layers_.reserve(network.layers.size());
    for (const ConvLayer &l : network.layers)
        layers_.emplace_back(l);
}

LayerCost
evaluateLayer(const AcceleratorConfig &config, const LayerView &view,
              const TechModel &tech)
{
    const ConvLayer &l = view.layer;
    const double pes = config.numPEs;
    const double weightCap =
        pes * static_cast<double>(config.weightSpadEntries);
    const double gbWordsCap =
        static_cast<double>(config.globalBufferKb) * 1024.0 / 2.0;
    const double batch = l.batch;

    MappingCost best;
    bool found = false;
    double bestScore = std::numeric_limits<double>::infinity();

    // The loop nest below enumerates the same (tk, tc, tp) candidates in
    // the same order and with the same per-candidate arithmetic as the
    // reference evaluateLayer, so the selected mapping (and every cost
    // number) is bit-identical. Everything that depends on only tk or
    // (tk, tc) is hoisted out of the innermost loop, and the capacity
    // checks — monotone in the tile sizes — turn 'continue' into 'break'.
    for (std::uint32_t tk : view.tilesK) {
        // Cooperative run deadline, mirroring the reference mapper loop.
        resilience::checkpoint();
        const double tkD = tk;
        const double passesK =
            std::ceil(static_cast<double>(l.outChannels) / tk);
        const double inputDram = view.inputCount * passesK;
        bool firstTcTooBig = false;
        for (std::uint32_t tc : view.tilesC) {
            const double weightTile = static_cast<double>(tk) * tc *
                                      l.kernelH * l.kernelW;
            if (weightTile > weightCap) {
                // Larger tc only grows the tile; and if even tc = 1
                // overflows, larger tk cannot fit either.
                firstTcTooBig = tc == view.tilesC.front();
                break;
            }
            const double passesC =
                std::ceil(static_cast<double>(l.inChannels) / tc);
            const double outputDram =
                view.outputCount * (2.0 * passesC - 1.0);
            const double dram = view.weightCount + inputDram + outputDram;
            const double dramWords = dram * batch;
            const double scoreDram = dramWords * tech.dramPj;
            const double outCTerm = view.outputCount * passesC;

            for (std::uint32_t tp : view.tilesP) {
                const double inputTileRows =
                    (static_cast<double>(tp - 1) * l.stride + l.kernelH);
                const double inputTile = static_cast<double>(tc) *
                                         inputTileRows * view.inputW;
                const double outputTile =
                    static_cast<double>(tk) * tp * l.outW;
                if (inputTile + outputTile > gbWordsCap)
                    break;  // both tiles grow with tp
                const double psumPerPe = outputTile / pes;
                if (psumPerPe > config.accumSpadEntries)
                    break;  // monotone in tp as well

                const double passesP =
                    std::ceil(static_cast<double>(l.outH) / tp);
                const double gb = dram + inputDram * passesP + outCTerm;
                const double gbWords = gb * batch;
                const double spatial = std::min(pes, tkD * tp);
                const double compute =
                    view.macs / std::max(1.0, spatial);
                const double score =
                    scoreDram + gbWords * tech.globalBufferPj + compute;
                if (score < bestScore) {
                    bestScore = score;
                    best.dramWords = dramWords;
                    best.gbWords = gbWords;
                    best.spadWords = view.spadWords;
                    best.computeCycles = compute;
                    best.utilization = spatial / pes;
                    found = true;
                }
            }
        }
        if (firstTcTooBig)
            break;
    }

    if (!found) {
        best.dramWords = view.macs * 3.0;
        best.gbWords = best.dramWords;
        best.spadWords = 3.0 * view.macs;
        best.computeCycles =
            view.macs /
            std::max(1.0, static_cast<double>(config.numPEs));
        best.utilization = 1.0 / config.numPEs;
    }

    LayerCost cost;
    const double dramCycles =
        best.dramWords / std::max(1u, config.dramWordsPerCycle);
    const double nocCycles =
        best.gbWords / std::max(1u, config.nocWordsPerCycle);
    cost.cycles = std::max({best.computeCycles, dramCycles, nocCycles});
    cost.latencyMs = cost.cycles / (config.clockGhz * 1e6);
    cost.utilization = best.utilization;
    cost.dramAccesses = best.dramWords;
    cost.bufferAccesses = best.gbWords;
    cost.spadAccesses = best.spadWords;
    cost.areaMm2 = areaMm2(config, tech);

    const double dynamicPj = best.dramWords * tech.dramPj +
                             best.gbWords * tech.globalBufferPj +
                             best.spadWords * tech.spadPj +
                             view.macs * tech.macPj +
                             best.gbWords * tech.nocPjPerHop;
    const double leakagePj = cost.areaMm2 * tech.leakageMwPerMm2 *
                             (cost.cycles / config.clockGhz);  // mW * ns
    cost.energyUj = (dynamicPj + leakagePj) / 1e6;
    return cost;
}

LayerCost
evaluateNetwork(const AcceleratorConfig &config, const NetworkView &network,
                const TechModel &tech)
{
    LayerCost total;
    total.areaMm2 = areaMm2(config, tech);
    double utilWeighted = 0.0;
    for (const LayerView &layer : network.layers()) {
        const LayerCost c = evaluateLayer(config, layer, tech);
        total.cycles += c.cycles;
        total.latencyMs += c.latencyMs;
        total.energyUj += c.energyUj;
        total.dramAccesses += c.dramAccesses;
        total.bufferAccesses += c.bufferAccesses;
        total.spadAccesses += c.spadAccesses;
        utilWeighted += c.utilization * c.cycles;
    }
    total.utilization =
        total.cycles > 0.0 ? utilWeighted / total.cycles : 0.0;
    return total;
}

} // namespace archgym::timeloop
