/**
 * @file
 * Eyeriss-class DNN accelerator architecture description.
 *
 * The TimeloopGym design space (Fig. 3b) tunes the datapath resources of a
 * spatial accelerator: PE count, per-PE scratchpad capacities (weights,
 * inputs, partial sums), the shared global buffer, and the NoC bandwidth
 * feeding the array. Energy-per-access and area coefficients follow the
 * usual 65 nm Eyeriss-style hierarchy where each level costs roughly an
 * order of magnitude more energy than the one below it.
 */

#ifndef ARCHGYM_TIMELOOP_ACCELERATOR_H
#define ARCHGYM_TIMELOOP_ACCELERATOR_H

#include <cstdint>
#include <string>

namespace archgym::timeloop {

/** The TimeloopGym design point. */
struct AcceleratorConfig
{
    std::uint32_t numPEs = 168;            ///< processing elements
    std::uint32_t weightSpadEntries = 192; ///< words per PE
    std::uint32_t inputSpadEntries = 12;   ///< words per PE
    std::uint32_t accumSpadEntries = 16;   ///< psum words per PE
    std::uint32_t globalBufferKb = 108;    ///< shared buffer, KiB
    std::uint32_t nocWordsPerCycle = 4;    ///< GB <-> array bandwidth
    std::uint32_t dramWordsPerCycle = 2;   ///< off-chip bandwidth
    double clockGhz = 1.0;

    std::string str() const;
};

/** Technology coefficients (65 nm-style). */
struct TechModel
{
    // Energy per access, pJ per word.
    double dramPj = 200.0;
    double globalBufferPj = 6.0;
    double spadPj = 1.0;
    double macPj = 0.2;
    double nocPjPerHop = 0.5;

    // Area, mm^2.
    double peAreaMm2 = 0.01;          ///< MAC + control per PE
    double spadAreaMm2PerWord = 2e-5;
    double bufferAreaMm2PerKb = 0.02;
    double baseAreaMm2 = 1.5;         ///< pads, controller, misc

    // Static power for leakage energy, mW.
    double leakageMwPerMm2 = 0.8;
};

/** Area of the configured accelerator in mm^2. */
double areaMm2(const AcceleratorConfig &config, const TechModel &tech);

} // namespace archgym::timeloop

#endif // ARCHGYM_TIMELOOP_ACCELERATOR_H
