/**
 * @file
 * Analytical cost model for the DNN accelerator (the Timeloop stand-in).
 *
 * For a given (architecture, layer) pair the model performs a small
 * internal mapping search in the style of Timeloop's mapper: it sweeps
 * power-of-two tile sizes for the K / C / P dimensions, discards tilings
 * that do not fit the scratchpads and global buffer, and evaluates the
 * remaining candidates with a loop-nest reuse model that counts per-level
 * accesses. The best-energy-delay mapping defines the layer cost.
 *
 * Latency is the max of compute-bound, NoC-bound, and DRAM-bound cycle
 * counts (roofline composition); energy sums per-level access energies
 * plus leakage over the runtime; area comes from the tech model.
 */

#ifndef ARCHGYM_TIMELOOP_COST_MODEL_H
#define ARCHGYM_TIMELOOP_COST_MODEL_H

#include "timeloop/accelerator.h"
#include "timeloop/workload.h"

namespace archgym::timeloop {

/** Cost of one layer (or a whole network) on one architecture. */
struct LayerCost
{
    double cycles = 0.0;
    double latencyMs = 0.0;
    double energyUj = 0.0;
    double areaMm2 = 0.0;
    double utilization = 0.0;    ///< active PE fraction
    double dramAccesses = 0.0;   ///< words
    double bufferAccesses = 0.0; ///< global buffer words
    double spadAccesses = 0.0;   ///< register-file words

    /** Energy-delay product used to rank internal mappings. */
    double edp() const { return energyUj * latencyMs; }
};

/** Evaluate one layer; always returns a finite cost (worst-case tiling
 *  degenerates to streaming everything from DRAM). */
LayerCost evaluateLayer(const AcceleratorConfig &config,
                        const ConvLayer &layer,
                        const TechModel &tech = {});

/** Sum of per-layer costs over a network (area is not accumulated). */
LayerCost evaluateNetwork(const AcceleratorConfig &config,
                          const Network &network,
                          const TechModel &tech = {});

} // namespace archgym::timeloop

#endif // ARCHGYM_TIMELOOP_COST_MODEL_H
