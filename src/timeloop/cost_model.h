/**
 * @file
 * Analytical cost model for the DNN accelerator (the Timeloop stand-in).
 *
 * For a given (architecture, layer) pair the model performs a small
 * internal mapping search in the style of Timeloop's mapper: it sweeps
 * power-of-two tile sizes for the K / C / P dimensions, discards tilings
 * that do not fit the scratchpads and global buffer, and evaluates the
 * remaining candidates with a loop-nest reuse model that counts per-level
 * accesses. The best-energy-delay mapping defines the layer cost.
 *
 * Latency is the max of compute-bound, NoC-bound, and DRAM-bound cycle
 * counts (roofline composition); energy sums per-level access energies
 * plus leakage over the runtime; area comes from the tech model.
 */

#ifndef ARCHGYM_TIMELOOP_COST_MODEL_H
#define ARCHGYM_TIMELOOP_COST_MODEL_H

#include "timeloop/accelerator.h"
#include "timeloop/workload.h"

namespace archgym::timeloop {

/** Cost of one layer (or a whole network) on one architecture. */
struct LayerCost
{
    double cycles = 0.0;
    double latencyMs = 0.0;
    double energyUj = 0.0;
    double areaMm2 = 0.0;
    double utilization = 0.0;    ///< active PE fraction
    double dramAccesses = 0.0;   ///< words
    double bufferAccesses = 0.0; ///< global buffer words
    double spadAccesses = 0.0;   ///< register-file words

    /** Energy-delay product used to rank internal mappings. */
    double edp() const { return energyUj * latencyMs; }
};

/** Evaluate one layer; always returns a finite cost (worst-case tiling
 *  degenerates to streaming everything from DRAM).
 *
 *  This entry point re-derives tile candidates and operand counts per
 *  call — the per-step-rebuild reference path. Hot loops use the
 *  LayerView/NetworkView overloads below, which are bit-identical but
 *  precompute everything layer-dependent once. */
LayerCost evaluateLayer(const AcceleratorConfig &config,
                        const ConvLayer &layer,
                        const TechModel &tech = {});

/** Sum of per-layer costs over a network (area is not accumulated). */
LayerCost evaluateNetwork(const AcceleratorConfig &config,
                          const Network &network,
                          const TechModel &tech = {});

/**
 * Immutable preprocessed view of one layer: the power-of-two tile
 * candidates for the K / C / P mapper dimensions plus every loop bound
 * and operand count the mapper would otherwise re-derive for each of the
 * hundreds of candidate tilings it scores per evaluation.
 */
struct LayerView
{
    explicit LayerView(const ConvLayer &l);

    ConvLayer layer;
    std::vector<std::uint32_t> tilesK;  ///< candidates for outChannels
    std::vector<std::uint32_t> tilesC;  ///< candidates for inChannels
    std::vector<std::uint32_t> tilesP;  ///< candidates for outH
    double macs = 0.0;
    double weightCount = 0.0;
    double inputCount = 0.0;
    double outputCount = 0.0;
    double inputW = 0.0;
    double spadWords = 0.0;             ///< 3 words per MAC
};

/** Immutable preprocessed workload view, built once per environment and
 *  shared read-only across steps. */
class NetworkView
{
  public:
    explicit NetworkView(const Network &network);

    const std::string &name() const { return name_; }
    const std::vector<LayerView> &layers() const { return layers_; }

  private:
    std::string name_;
    std::vector<LayerView> layers_;
};

/** Bit-identical to evaluateLayer(config, view.layer, tech), with all
 *  layer-only quantities read from the view and candidate loops pruned
 *  by capacity monotonicity — no per-call allocation or re-derivation. */
LayerCost evaluateLayer(const AcceleratorConfig &config,
                        const LayerView &view, const TechModel &tech = {});

/** Bit-identical to evaluateNetwork over the network the view wraps. */
LayerCost evaluateNetwork(const AcceleratorConfig &config,
                          const NetworkView &network,
                          const TechModel &tech = {});

} // namespace archgym::timeloop

#endif // ARCHGYM_TIMELOOP_COST_MODEL_H
