/**
 * @file
 * Descriptive statistics used throughout the ArchGym evaluation: the paper
 * reports interquartile ranges (hyperparameter lottery, Figs. 4-5), mean
 * normalized rewards (Fig. 7), RMSE and correlation for the proxy cost
 * models (Figs. 10-12).
 */

#ifndef ARCHGYM_MATHUTIL_STATS_H
#define ARCHGYM_MATHUTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace archgym {

/** Five-number summary plus mean, as used in the lottery box plots. */
struct Summary
{
    std::size_t count = 0;
    double min = 0.0;
    double q1 = 0.0;      ///< 25th percentile
    double median = 0.0;  ///< 50th percentile
    double q3 = 0.0;      ///< 75th percentile
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample standard deviation

    /** Interquartile range, the paper's "statistical spread" metric. */
    double iqr() const { return q3 - q1; }

    /**
     * IQR normalized by the median magnitude, matching the paper's
     * "up to 90% statistical spread" phrasing.
     *
     * A near-zero median makes the ratio meaningless: rewards centered
     * on zero would read as "perfectly stable" (or absurdly spread) no
     * matter how wide the box plot is. That degenerate case returns
     * NaN as an explicit sentinel — callers must not fold it into
     * comparisons silently; str() renders it as "n/a".
     */
    double relativeSpread() const;

    /** One-line human readable rendering for bench output. */
    std::string str() const;
};

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Sample variance (n-1 denominator); 0 for fewer than two samples. */
double variance(const std::vector<double> &xs);

/** Sample standard deviation. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile.
 *
 * @param xs  samples (need not be sorted)
 * @param p   percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/**
 * Percentile of an already-sorted (ascending) sample vector — no copy,
 * no re-sort. summarize() uses this so one sort serves all five
 * order statistics instead of four.
 */
double percentileSorted(const std::vector<double> &sorted_xs, double p);

/** Compute the full summary of a sample set. */
Summary summarize(const std::vector<double> &xs);

/** Root mean square error between predictions and ground truth. */
double rmse(const std::vector<double> &predicted,
            const std::vector<double> &actual);

/** Mean absolute error. */
double meanAbsError(const std::vector<double> &predicted,
                    const std::vector<double> &actual);

/**
 * Pearson correlation coefficient. Degenerate inputs — fewer than two
 * points, mismatched lengths, or either side constant — have no defined
 * correlation and return NaN (render as "n/a", mirroring
 * Summary::relativeSpread) rather than a fabricated 0.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Min-max normalize values into [0, 1]. Constant inputs map to all zeros.
 * Used for the mean normalized reward comparisons (Fig. 7).
 */
std::vector<double> minMaxNormalize(const std::vector<double> &xs);

} // namespace archgym

#endif // ARCHGYM_MATHUTIL_STATS_H
