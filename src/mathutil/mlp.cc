#include "mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace archgym {

Mlp::Mlp(const std::vector<std::size_t> &layer_sizes, Rng &rng,
         const AdamConfig &adam)
    : layerSizes_(layer_sizes), adam_(adam)
{
    assert(layer_sizes.size() >= 2);
    for (std::size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
        Layer layer;
        layer.in = layer_sizes[l];
        layer.out = layer_sizes[l + 1];
        layer.w.resize(layer.in * layer.out);
        layer.b.assign(layer.out, 0.0);
        // Xavier/Glorot initialization keeps tanh activations in range.
        const double scale = std::sqrt(
            2.0 / static_cast<double>(layer.in + layer.out));
        for (auto &w : layer.w)
            w = rng.gaussian(0.0, scale);
        layer.gradW.assign(layer.w.size(), 0.0);
        layer.gradB.assign(layer.b.size(), 0.0);
        layer.mW.assign(layer.w.size(), 0.0);
        layer.vW.assign(layer.w.size(), 0.0);
        layer.mB.assign(layer.b.size(), 0.0);
        layer.vB.assign(layer.b.size(), 0.0);
        layers_.push_back(std::move(layer));
    }
}

std::vector<double>
Mlp::forward(const std::vector<double> &input)
{
    assert(input.size() == inputSize());
    std::vector<double> x = input;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer &layer = layers_[l];
        layer.input = x;
        layer.preAct.assign(layer.out, 0.0);
        for (std::size_t o = 0; o < layer.out; ++o) {
            double s = layer.b[o];
            const double *row = &layer.w[o * layer.in];
            for (std::size_t i = 0; i < layer.in; ++i)
                s += row[i] * x[i];
            layer.preAct[o] = s;
        }
        const bool last = (l + 1 == layers_.size());
        layer.output.resize(layer.out);
        for (std::size_t o = 0; o < layer.out; ++o)
            layer.output[o] = last ? layer.preAct[o]
                                   : std::tanh(layer.preAct[o]);
        x = layer.output;
    }
    return x;
}

void
Mlp::backward(const std::vector<double> &grad_output)
{
    assert(grad_output.size() == outputSize());
    std::vector<double> grad = grad_output;
    for (std::size_t li = layers_.size(); li > 0; --li) {
        Layer &layer = layers_[li - 1];
        const bool last = (li == layers_.size());
        // d(activation)/d(preAct): identity for the linear output layer,
        // 1 - tanh^2 for hidden layers.
        std::vector<double> delta(layer.out);
        for (std::size_t o = 0; o < layer.out; ++o) {
            const double dact =
                last ? 1.0
                     : 1.0 - layer.output[o] * layer.output[o];
            delta[o] = grad[o] * dact;
        }
        for (std::size_t o = 0; o < layer.out; ++o) {
            layer.gradB[o] += delta[o];
            double *grow = &layer.gradW[o * layer.in];
            for (std::size_t i = 0; i < layer.in; ++i)
                grow[i] += delta[o] * layer.input[i];
        }
        if (li > 1) {
            std::vector<double> gradIn(layer.in, 0.0);
            for (std::size_t o = 0; o < layer.out; ++o) {
                const double *row = &layer.w[o * layer.in];
                for (std::size_t i = 0; i < layer.in; ++i)
                    gradIn[i] += row[i] * delta[o];
            }
            grad = std::move(gradIn);
        }
    }
}

void
Mlp::adamStep(std::vector<double> &params, const std::vector<double> &grads,
              std::vector<double> &m, std::vector<double> &v)
{
    const double t = static_cast<double>(adamT_);
    const double bc1 = 1.0 - std::pow(adam_.beta1, t);
    const double bc2 = 1.0 - std::pow(adam_.beta2, t);
    for (std::size_t i = 0; i < params.size(); ++i) {
        m[i] = adam_.beta1 * m[i] + (1.0 - adam_.beta1) * grads[i];
        v[i] = adam_.beta2 * v[i] + (1.0 - adam_.beta2) * grads[i] * grads[i];
        const double mhat = m[i] / bc1;
        const double vhat = v[i] / bc2;
        params[i] -= adam_.learningRate * mhat /
                     (std::sqrt(vhat) + adam_.epsilon);
    }
}

void
Mlp::applyGradients()
{
    ++adamT_;
    for (Layer &layer : layers_) {
        adamStep(layer.w, layer.gradW, layer.mW, layer.vW);
        adamStep(layer.b, layer.gradB, layer.mB, layer.vB);
        std::fill(layer.gradW.begin(), layer.gradW.end(), 0.0);
        std::fill(layer.gradB.begin(), layer.gradB.end(), 0.0);
    }
}

void
Mlp::zeroGradients()
{
    for (Layer &layer : layers_) {
        std::fill(layer.gradW.begin(), layer.gradW.end(), 0.0);
        std::fill(layer.gradB.begin(), layer.gradB.end(), 0.0);
    }
}

double
Mlp::parameterNorm() const
{
    double s = 0.0;
    for (const Layer &layer : layers_) {
        for (double w : layer.w)
            s += w * w;
        for (double b : layer.b)
            s += b * b;
    }
    return std::sqrt(s);
}

std::size_t
Mlp::parameterCount() const
{
    std::size_t n = 0;
    for (const Layer &layer : layers_)
        n += layer.w.size() + layer.b.size();
    return n;
}

std::vector<double>
softmax(const std::vector<double> &logits)
{
    std::vector<double> out(logits.size());
    const double mx = *std::max_element(logits.begin(), logits.end());
    double total = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        out[i] = std::exp(logits[i] - mx);
        total += out[i];
    }
    for (auto &p : out)
        p /= total;
    return out;
}

double
logSoftmaxAt(const std::vector<double> &logits, std::size_t index)
{
    const double mx = *std::max_element(logits.begin(), logits.end());
    double total = 0.0;
    for (double l : logits)
        total += std::exp(l - mx);
    return (logits[index] - mx) - std::log(total);
}

} // namespace archgym
