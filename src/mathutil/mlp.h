/**
 * @file
 * A compact multilayer perceptron with Adam, used as the policy network of
 * the reinforcement-learning agent (the paper's RL agents use neural
 * network policies, cf. Fig. 2).
 *
 * The network is deliberately minimal: dense layers, tanh hidden
 * activations, linear output. Training happens through an explicit
 * forward / backward pair so the policy-gradient loss can inject an
 * arbitrary gradient at the output.
 */

#ifndef ARCHGYM_MATHUTIL_MLP_H
#define ARCHGYM_MATHUTIL_MLP_H

#include <cstddef>
#include <vector>

#include "mathutil/rng.h"

namespace archgym {

/** Adam optimizer configuration. */
struct AdamConfig
{
    double learningRate = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
};

/**
 * Fully connected feed-forward network with tanh hidden layers and a
 * linear output layer.
 */
class Mlp
{
  public:
    /**
     * @param layer_sizes  e.g. {4, 32, 32, 10}: input 4, two hidden layers
     *                     of 32, output 10. Needs at least {in, out}.
     * @param rng          source of initialization randomness
     * @param adam         optimizer settings
     */
    Mlp(const std::vector<std::size_t> &layer_sizes, Rng &rng,
        const AdamConfig &adam = {});

    std::size_t inputSize() const { return layerSizes_.front(); }
    std::size_t outputSize() const { return layerSizes_.back(); }

    /** Forward pass; caches activations for a subsequent backward(). */
    std::vector<double> forward(const std::vector<double> &input);

    /**
     * Accumulate parameter gradients given the gradient of the loss with
     * respect to the network output of the *most recent* forward() call.
     * Gradients accumulate across calls until applyGradients().
     */
    void backward(const std::vector<double> &grad_output);

    /** Apply one Adam step using accumulated gradients, then clear them. */
    void applyGradients();

    /** Discard accumulated gradients without applying them. */
    void zeroGradients();

    /** L2 norm of all parameters (diagnostics and tests). */
    double parameterNorm() const;

    /** Number of trainable scalars. */
    std::size_t parameterCount() const;

    /** Direct access for tests / serialization: weights of layer l. */
    std::vector<double> &weights(std::size_t layer)
    {
        return layers_[layer].w;
    }
    std::vector<double> &biases(std::size_t layer)
    {
        return layers_[layer].b;
    }
    std::size_t layerCount() const { return layers_.size(); }

  private:
    struct Layer
    {
        std::size_t in = 0;
        std::size_t out = 0;
        std::vector<double> w;       ///< out x in, row-major
        std::vector<double> b;       ///< out
        std::vector<double> gradW;
        std::vector<double> gradB;
        // Adam moments.
        std::vector<double> mW, vW, mB, vB;
        // Cached forward values.
        std::vector<double> input;
        std::vector<double> preAct;
        std::vector<double> output;
    };

    void adamStep(std::vector<double> &params,
                  const std::vector<double> &grads, std::vector<double> &m,
                  std::vector<double> &v);

    std::vector<std::size_t> layerSizes_;
    std::vector<Layer> layers_;
    AdamConfig adam_;
    std::size_t adamT_ = 0;
};

/** Numerically stable softmax. */
std::vector<double> softmax(const std::vector<double> &logits);

/** log(softmax(logits))[index], computed stably. */
double logSoftmaxAt(const std::vector<double> &logits, std::size_t index);

} // namespace archgym

#endif // ARCHGYM_MATHUTIL_MLP_H
