#include "stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace archgym {

double
Summary::relativeSpread() const
{
    const double denom = std::abs(median);
    if (denom < 1e-300)
        return std::numeric_limits<double>::quiet_NaN();
    return iqr() / denom;
}

std::string
Summary::str() const
{
    std::ostringstream os;
    os << "n=" << count << " min=" << min << " q1=" << q1
       << " med=" << median << " q3=" << q3 << " max=" << max
       << " mean=" << mean << " iqr=" << iqr() << " spread=";
    const double spread = relativeSpread();
    if (std::isnan(spread))
        os << "n/a";
    else
        os << spread;
    return os.str();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
percentile(std::vector<double> xs, double p)
{
    std::sort(xs.begin(), xs.end());
    return percentileSorted(xs, p);
}

double
percentileSorted(const std::vector<double> &sorted_xs, double p)
{
    if (sorted_xs.empty())
        return 0.0;
    if (p <= 0.0)
        return sorted_xs.front();
    if (p >= 100.0)
        return sorted_xs.back();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_xs.size())
        return sorted_xs.back();
    return sorted_xs[lo] * (1.0 - frac) + sorted_xs[lo + 1] * frac;
}

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    s.count = xs.size();
    if (xs.empty())
        return s;
    // One sort serves min/max and all three quartiles; the old path
    // copied and re-sorted the already-sorted vector once per quartile.
    std::vector<double> sorted(xs);
    std::sort(sorted.begin(), sorted.end());
    s.min = sorted.front();
    s.max = sorted.back();
    s.q1 = percentileSorted(sorted, 25.0);
    s.median = percentileSorted(sorted, 50.0);
    s.q3 = percentileSorted(sorted, 75.0);
    s.mean = mean(xs);
    s.stddev = stddev(xs);
    return s;
}

double
rmse(const std::vector<double> &predicted, const std::vector<double> &actual)
{
    if (predicted.empty() || predicted.size() != actual.size())
        return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double d = predicted[i] - actual[i];
        s += d * d;
    }
    return std::sqrt(s / static_cast<double>(predicted.size()));
}

double
meanAbsError(const std::vector<double> &predicted,
             const std::vector<double> &actual)
{
    if (predicted.empty() || predicted.size() != actual.size())
        return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        s += std::abs(predicted[i] - actual[i]);
    return s / static_cast<double>(predicted.size());
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        return std::numeric_limits<double>::quiet_NaN();
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
minMaxNormalize(const std::vector<double> &xs)
{
    std::vector<double> out(xs.size(), 0.0);
    if (xs.empty())
        return out;
    const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
    const double range = *hi - *lo;
    if (range <= 0.0)
        return out;
    for (std::size_t i = 0; i < xs.size(); ++i)
        out[i] = (xs[i] - *lo) / range;
    return out;
}

} // namespace archgym
