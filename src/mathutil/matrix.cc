#include "matrix.h"

#include <cassert>
#include <cmath>

namespace archgym {

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                out(i, j) += a * other(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    assert(cols_ == v.size());
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            s += (*this)(i, j) * v[j];
        out[i] = s;
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Cholesky::Cholesky(const Matrix &a, double jitter)
{
    assert(a.rows() == a.cols());
    // Try plain factorization first, then escalate jitter by 10x up to a
    // generous cap; GP kernel matrices with duplicated points need this.
    if (factor(a, 0.0)) {
        ok_ = true;
        return;
    }
    double j = jitter;
    for (int attempt = 0; attempt < 12; ++attempt, j *= 10.0) {
        if (factor(a, j)) {
            ok_ = true;
            jitterUsed_ = j;
            return;
        }
    }
    ok_ = false;
}

bool
Cholesky::factor(const Matrix &a, double jitter)
{
    const std::size_t n = a.rows();
    n_ = n;
    fac_.assign(rowStart(n), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double *ri = fac_.data() + rowStart(i);
        for (std::size_t j = 0; j <= i; ++j) {
            const double *rj = fac_.data() + rowStart(j);
            double s = a(i, j);
            if (i == j)
                s += jitter;
            for (std::size_t k = 0; k < j; ++k)
                s -= ri[k] * rj[k];
            if (i == j) {
                if (s <= 0.0 || !std::isfinite(s))
                    return false;
                ri[i] = std::sqrt(s);
            } else {
                ri[j] = s / rj[j];
            }
        }
    }
    return true;
}

void
Cholesky::reserve(std::size_t max_dim)
{
    fac_.reserve(rowStart(max_dim));
}

bool
Cholesky::append(const std::vector<double> &col)
{
    assert(ok_);
    const std::size_t n = n_;
    assert(col.size() == n + 1);

    // Grow the packed storage by one row and run the forward
    // substitution l = L^-1 k directly in place — with reserved
    // capacity this allocates and copies nothing.
    const std::size_t base = fac_.size();
    fac_.resize(base + n + 1);
    double *row = fac_.data() + base;
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac_.data() + rowStart(i);
        double s = col[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= ri[k] * row[k];
        row[i] = s / ri[i];
    }
    double s = col[n] + jitterUsed_;
    for (std::size_t k = 0; k < n; ++k)
        s -= row[k] * row[k];
    if (s <= 0.0 || !std::isfinite(s)) {
        fac_.resize(base);  // leave the factor unchanged
        return false;
    }
    row[n] = std::sqrt(s);
    ++n_;
    return true;
}

Matrix
Cholesky::lower() const
{
    Matrix out(n_, n_);
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = 0; j <= i; ++j)
            out(i, j) = at(i, j);
    return out;
}

std::vector<double>
Cholesky::solveLower(const std::vector<double> &b) const
{
    const std::size_t n = n_;
    assert(b.size() == n);
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac_.data() + rowStart(i);
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= ri[k] * y[k];
        y[i] = s / ri[i];
    }
    return y;
}

std::vector<double>
Cholesky::solve(const std::vector<double> &b) const
{
    const std::size_t n = n_;
    std::vector<double> y = solveLower(b);
    // Backward substitution with L^T.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double s = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            s -= at(k, i) * x[k];
        x[i] = s / at(i, i);
    }
    return x;
}

double
Cholesky::logDet() const
{
    double s = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        s += std::log(at(i, i));
    return 2.0 * s;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace archgym
