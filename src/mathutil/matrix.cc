#include "matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace archgym {

namespace {

#if defined(__GNUC__) || defined(__clang__)
/** Four-lane double vector (one AVX register, or two SSE registers on
 *  older ISAs — the compiler splits it transparently). The Unaligned
 *  variant relaxes the natural 32-byte alignment so loads/stores
 *  compile to single unaligned vector moves instead of bouncing
 *  through the stack, and is may_alias so casting a double* to it is
 *  well-defined. */
typedef double V4d __attribute__((vector_size(32)));
typedef double V4dUnaligned
    __attribute__((vector_size(32), aligned(8), may_alias));

inline V4d
loadu4(const double *p)
{
    return *reinterpret_cast<const V4dUnaligned *>(p);
}

inline void
storeu4(double *p, V4d v)
{
    *reinterpret_cast<V4dUnaligned *>(p) = v;
}

/**
 * Forward substitution for one full-width (16-column) block of the
 * multi-RHS solve, written with explicit vector types: four 4-lane
 * accumulators stay in registers for the whole k-loop, each iteration
 * is one broadcast plus four multiply-subtracts. Spelled as explicit
 * vectors because the autovectorized version of this loop is
 * codegen-roulette (GCC 12 variously spills an indexed accumulator
 * array to the stack, assembles the vectors from scalar loads when
 * the row stride is a runtime value, or identical-code-folds the
 * kernel with the remainder loop — each worth 3-4x on the 600-point
 * GP candidate sweep). Lanes are independent: per column j the
 * operation order (k ascending, multiply then subtract, final divide)
 * matches solveLower exactly, so results are bit-identical to the
 * scalar path.
 */
__attribute__((noinline)) void
solveLowerBlock16(const double *__restrict fac, std::size_t n,
                  double *__restrict b, std::size_t m, std::size_t c0)
{
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac + rowStart(i);
        double *bi = b + i * m + c0;
        V4d a0 = loadu4(bi);
        V4d a1 = loadu4(bi + 4);
        V4d a2 = loadu4(bi + 8);
        V4d a3 = loadu4(bi + 12);
        const double *bk = b + c0;
        for (std::size_t k = 0; k < i; ++k, bk += m) {
            const double lik = ri[k];
            const V4d l = {lik, lik, lik, lik};
            a0 -= l * loadu4(bk);
            a1 -= l * loadu4(bk + 4);
            a2 -= l * loadu4(bk + 8);
            a3 -= l * loadu4(bk + 12);
        }
        const double di = ri[i];
        const V4d d = {di, di, di, di};
        storeu4(bi, a0 / d);
        storeu4(bi + 4, a1 / d);
        storeu4(bi + 8, a2 / d);
        storeu4(bi + 12, a3 / d);
    }
}
#else
/** Portable fallback of the 16-column block kernel. */
void
solveLowerBlock16(const double *fac, std::size_t n, double *b,
                  std::size_t m, std::size_t c0)
{
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac + rowStart(i);
        double *bi = b + i * m + c0;
        double acc[16];
        for (std::size_t j = 0; j < 16; ++j)
            acc[j] = bi[j];
        for (std::size_t k = 0; k < i; ++k) {
            const double lik = ri[k];
            const double *bk = b + k * m + c0;
            for (std::size_t j = 0; j < 16; ++j)
                acc[j] -= lik * bk[j];
        }
        const double di = ri[i];
        for (std::size_t j = 0; j < 16; ++j)
            bi[j] = acc[j] / di;
    }
}
#endif

} // namespace

void
solveLowerPackedBatch(const double *fac, std::size_t n, double *b,
                      std::size_t m)
{
    constexpr std::size_t kBlock = 16;
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    std::size_t c0 = 0;
    for (; c0 + kBlock <= m; c0 += kBlock)
        solveLowerBlock16(fac, n, b, m, c0);
    // Remainder columns: plain scalar forward substitution per column
    // (exactly the solveLower op order). Kept structurally distinct
    // from the block kernel so identical-code folding cannot merge
    // them — see solveLowerBlock16.
    for (std::size_t j = c0; j < m; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const double *ri = fac + rowStart(i);
            double s = b[i * m + j];
            for (std::size_t k = 0; k < i; ++k)
                s -= ri[k] * b[k * m + j];
            b[i * m + j] = s / ri[i];
        }
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                out(i, j) += a * other(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    assert(cols_ == v.size());
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            s += (*this)(i, j) * v[j];
        out[i] = s;
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Cholesky::Cholesky(const Matrix &a, double jitter)
{
    assert(a.rows() == a.cols());
    // Try plain factorization first, then escalate jitter by 10x up to a
    // generous cap; GP kernel matrices with duplicated points need this.
    if (factor(a, 0.0)) {
        ok_ = true;
        return;
    }
    double j = jitter;
    for (int attempt = 0; attempt < 12; ++attempt, j *= 10.0) {
        if (factor(a, j)) {
            ok_ = true;
            jitterUsed_ = j;
            return;
        }
    }
    ok_ = false;
}

bool
Cholesky::factor(const Matrix &a, double jitter)
{
    const std::size_t n = a.rows();
    n_ = n;
    fac_.assign(rowStart(n), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double *ri = fac_.data() + rowStart(i);
        for (std::size_t j = 0; j <= i; ++j) {
            const double *rj = fac_.data() + rowStart(j);
            double s = a(i, j);
            if (i == j)
                s += jitter;
            for (std::size_t k = 0; k < j; ++k)
                s -= ri[k] * rj[k];
            if (i == j) {
                if (s <= 0.0 || !std::isfinite(s))
                    return false;
                ri[i] = std::sqrt(s);
            } else {
                ri[j] = s / rj[j];
            }
        }
    }
    return true;
}

void
Cholesky::reserve(std::size_t max_dim)
{
    fac_.reserve(rowStart(max_dim));
}

bool
Cholesky::append(const std::vector<double> &col)
{
    assert(ok_);
    const std::size_t n = n_;
    assert(col.size() == n + 1);

    // Grow the packed storage by one row and run the forward
    // substitution l = L^-1 k directly in place — with reserved
    // capacity this allocates and copies nothing.
    const std::size_t base = fac_.size();
    fac_.resize(base + n + 1);
    double *row = fac_.data() + base;
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac_.data() + rowStart(i);
        double s = col[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= ri[k] * row[k];
        row[i] = s / ri[i];
    }
    double s = col[n] + jitterUsed_;
    for (std::size_t k = 0; k < n; ++k)
        s -= row[k] * row[k];
    if (s <= 0.0 || !std::isfinite(s)) {
        fac_.resize(base);  // leave the factor unchanged
        return false;
    }
    row[n] = std::sqrt(s);
    ++n_;
    return true;
}

bool
Cholesky::removeRow(std::size_t k)
{
    assert(ok_);
    const std::size_t n = n_;
    assert(k < n && n >= 2);

    const std::size_t m = n - 1 - k;  // trailing-block dimension
    // Save the deleted column's sub-diagonal entries u_i = L(i, k); the
    // trailing block must absorb u u^T to stay a factor of the
    // punctured matrix. Validate the whole update on a scratch copy of
    // the trailing block first, so a failed downdate leaves the factor
    // untouched.
    std::vector<double> u(m);
    for (std::size_t i = 0; i < m; ++i)
        u[i] = at(k + 1 + i, k);

    // Shifted rows of the punctured factor, packed row-major: scratch
    // row i is old row k+1+i with column k deleted, so it has k+1+i
    // entries (new columns 0..k+i). Validating the update here first
    // means a failed downdate leaves the factor untouched.
    const auto shiftedStart = [k](std::size_t i) {
        return i * (k + 1) + i * (i - 1) / 2;
    };
    std::vector<double> block(shiftedStart(m));
    {
        std::size_t w = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const double *src = fac_.data() + rowStart(k + 1 + i);
            for (std::size_t j = 0; j < k; ++j)
                block[w++] = src[j];
            for (std::size_t j = k + 1; j <= k + 1 + i; ++j)
                block[w++] = src[j];
        }
    }
    const auto blockAt = [&](std::size_t i, std::size_t j) -> double & {
        return block[shiftedStart(i) + j];
    };

    // Rank-1 update L' L'^T = L L^T + u u^T on the trailing block's
    // lower-right (m x m) corner via Givens-style rotations, one
    // column at a time. The update preserves positive definiteness in
    // exact arithmetic; only overflow/underflow under extreme dynamic
    // range can break it, which the finite/positive checks catch.
    for (std::size_t j = 0; j < m; ++j) {
        double &ljj = blockAt(j, k + j);
        const double r = std::sqrt(ljj * ljj + u[j] * u[j]);
        if (!(r > 0.0) || !std::isfinite(r))
            return false;
        const double c = r / ljj;
        const double s = u[j] / ljj;
        ljj = r;
        for (std::size_t i = j + 1; i < m; ++i) {
            double &lij = blockAt(i, k + j);
            lij = (lij + s * u[i]) / c;
            u[i] = c * u[i] - s * lij;
            if (!std::isfinite(lij))
                return false;
        }
    }

    // Commit: rows 0..k-1 stay in place; the validated trailing block
    // shifts into rows k..k+m-1. Writes land strictly below the packed
    // offsets they replace, and the factor shrinks within its own
    // storage (capacity is retained for future appends).
    std::size_t r2 = 0;
    for (std::size_t i = 0; i < m; ++i) {
        double *dst = fac_.data() + rowStart(k + i);
        for (std::size_t j = 0; j <= k + i; ++j)
            dst[j] = block[r2++];
    }
    --n_;
    fac_.resize(rowStart(n_));
    return true;
}

void
Cholesky::solveLowerBatch(Matrix &b) const
{
    const std::size_t n = n_;
    const std::size_t m = b.cols();
    assert(b.rows() == n);
    // Forward substitution over fixed-width column blocks. Within a
    // block, row i's partial sums live in a register-resident
    // accumulator for the whole k-loop, so each inner iteration
    // touches one factor entry and one 128-byte slice of an earlier
    // row — a working set that stays cache-resident where a
    // full-width sweep would re-stream the entire RHS matrix from L2
    // for every row. Per column the operation order (k ascending,
    // multiply-subtract, final divide) matches solveLower exactly, so
    // results are bit-identical to the scalar path at any block
    // geometry.
    if (m == 0 || n == 0)
        return;
    solveLowerPackedBatch(fac_.data(), n, &b(0, 0), m);
}

Matrix
Cholesky::lower() const
{
    Matrix out(n_, n_);
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = 0; j <= i; ++j)
            out(i, j) = at(i, j);
    return out;
}

std::vector<double>
Cholesky::solveLower(const std::vector<double> &b) const
{
    const std::size_t n = n_;
    assert(b.size() == n);
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac_.data() + rowStart(i);
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= ri[k] * y[k];
        y[i] = s / ri[i];
    }
    return y;
}

std::vector<double>
Cholesky::solve(const std::vector<double> &b) const
{
    const std::size_t n = n_;
    std::vector<double> y = solveLower(b);
    // Backward substitution with L^T.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double s = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            s -= at(k, i) * x[k];
        x[i] = s / at(i, i);
    }
    return x;
}

double
Cholesky::logDet() const
{
    double s = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        s += std::log(at(i, i));
    return 2.0 * s;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace archgym
