#include "matrix.h"

#include <cassert>
#include <cmath>

namespace archgym {

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                out(i, j) += a * other(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    assert(cols_ == v.size());
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            s += (*this)(i, j) * v[j];
        out[i] = s;
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Cholesky::Cholesky(const Matrix &a, double jitter)
{
    assert(a.rows() == a.cols());
    // Try plain factorization first, then escalate jitter by 10x up to a
    // generous cap; GP kernel matrices with duplicated points need this.
    if (factor(a, 0.0)) {
        ok_ = true;
        return;
    }
    double j = jitter;
    for (int attempt = 0; attempt < 12; ++attempt, j *= 10.0) {
        if (factor(a, j)) {
            ok_ = true;
            jitterUsed_ = j;
            return;
        }
    }
    ok_ = false;
}

bool
Cholesky::factor(const Matrix &a, double jitter)
{
    const std::size_t n = a.rows();
    l_ = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = a(i, j);
            if (i == j)
                s += jitter;
            for (std::size_t k = 0; k < j; ++k)
                s -= l_(i, k) * l_(j, k);
            if (i == j) {
                if (s <= 0.0 || !std::isfinite(s))
                    return false;
                l_(i, i) = std::sqrt(s);
            } else {
                l_(i, j) = s / l_(j, j);
            }
        }
    }
    return true;
}

bool
Cholesky::append(const std::vector<double> &col)
{
    assert(ok_);
    const std::size_t n = l_.rows();
    assert(col.size() == n + 1);

    // l = L^-1 k (forward substitution against the existing factor).
    std::vector<double> l(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double s = col[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l_(i, k) * l[k];
        l[i] = s / l_(i, i);
    }
    double s = col[n] + jitterUsed_;
    for (double v : l)
        s -= v * v;
    if (s <= 0.0 || !std::isfinite(s))
        return false;

    Matrix grown(n + 1, n + 1);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j <= i; ++j)
            grown(i, j) = l_(i, j);
    for (std::size_t j = 0; j < n; ++j)
        grown(n, j) = l[j];
    grown(n, n) = std::sqrt(s);
    l_ = std::move(grown);
    return true;
}

std::vector<double>
Cholesky::solveLower(const std::vector<double> &b) const
{
    const std::size_t n = l_.rows();
    assert(b.size() == n);
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l_(i, k) * y[k];
        y[i] = s / l_(i, i);
    }
    return y;
}

std::vector<double>
Cholesky::solve(const std::vector<double> &b) const
{
    const std::size_t n = l_.rows();
    std::vector<double> y = solveLower(b);
    // Backward substitution with L^T.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double s = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            s -= l_(k, i) * x[k];
        x[i] = s / l_(i, i);
    }
    return x;
}

double
Cholesky::logDet() const
{
    double s = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
        s += std::log(l_(i, i));
    return 2.0 * s;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace archgym
