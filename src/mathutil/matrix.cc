#include "matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace archgym {

namespace {

#if defined(__GNUC__) || defined(__clang__)
/** Four-lane double vector (one AVX register, or two SSE registers on
 *  older ISAs — the compiler splits it transparently). The Unaligned
 *  variant relaxes the natural 32-byte alignment so loads/stores
 *  compile to single unaligned vector moves instead of bouncing
 *  through the stack, and is may_alias so casting a double* to it is
 *  well-defined. */
typedef double V4d __attribute__((vector_size(32)));
typedef double V4dUnaligned
    __attribute__((vector_size(32), aligned(8), may_alias));

inline V4d
loadu4(const double *p)
{
    return *reinterpret_cast<const V4dUnaligned *>(p);
}

inline void
storeu4(double *p, V4d v)
{
    *reinterpret_cast<V4dUnaligned *>(p) = v;
}

/**
 * Panel-tiled forward substitution for one full-width (16-column)
 * block of the multi-RHS solve, written with explicit vector types:
 * four 4-lane accumulators stay in registers for each inner k-loop,
 * every iteration one broadcast plus four multiply-subtracts. Spelled
 * as explicit vectors because the autovectorized version of this loop
 * is codegen-roulette (GCC 12 variously spills an indexed accumulator
 * array to the stack, assembles the vectors from scalar loads when
 * the row stride is a runtime value, or identical-code-folds the
 * kernel with the remainder loop — each worth 3-4x on the 600-point
 * GP candidate sweep).
 *
 * The schedule is cache-tiled: a flat row-at-a-time sweep re-streams
 * every previously solved row of the block slice for each output row
 * — n^2/2 row reads per block, hundreds of megabytes of L2 traffic
 * per 600-point candidate sweep, which is where the solve's time
 * actually goes. Here output rows advance in panels of kPanel: the
 * subtraction of already-solved rows below the panel is applied
 * k-tile by k-tile, so each RHS row tile (kTile x 128 bytes, L1-
 * resident) is reused across the whole panel instead of being
 * re-fetched per row, then the small triangle inside the panel is
 * finished row by row.
 *
 * Bit-identity with solveLower is preserved because per column j and
 * output row i the multiply-subtracts still run in strictly ascending
 * k (tiles ascending, k ascending inside each tile, then the
 * intra-panel triangle), into the same accumulator, with the divide
 * last — only the memory access schedule changes, not the operation
 * order.
 */
__attribute__((noinline)) void
solveLowerPanelBlock16(const double *__restrict fac, std::size_t n,
                       double *__restrict b, std::size_t m,
                       std::size_t c0)
{
    constexpr std::size_t kPanel = 64;
    constexpr std::size_t kTile = 64;
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    V4d acc[kPanel][4];
    for (std::size_t i0 = 0; i0 < n; i0 += kPanel) {
        const std::size_t i1 = std::min(i0 + kPanel, n);
        for (std::size_t i = i0; i < i1; ++i) {
            double *bi = b + i * m + c0;
            acc[i - i0][0] = loadu4(bi);
            acc[i - i0][1] = loadu4(bi + 4);
            acc[i - i0][2] = loadu4(bi + 8);
            acc[i - i0][3] = loadu4(bi + 12);
        }
        // GEMM phase: absorb all rows solved in earlier panels,
        // k-tile by k-tile so the tile's RHS rows stay L1-resident
        // across every row of this panel.
        for (std::size_t k0 = 0; k0 < i0; k0 += kTile) {
            const std::size_t k1 = std::min(k0 + kTile, i0);
            for (std::size_t i = i0; i < i1; ++i) {
                const double *ri = fac + rowStart(i);
                V4d a0 = acc[i - i0][0];
                V4d a1 = acc[i - i0][1];
                V4d a2 = acc[i - i0][2];
                V4d a3 = acc[i - i0][3];
                const double *bk = b + k0 * m + c0;
                for (std::size_t k = k0; k < k1; ++k, bk += m) {
                    const double lik = ri[k];
                    const V4d l = {lik, lik, lik, lik};
                    a0 -= l * loadu4(bk);
                    a1 -= l * loadu4(bk + 4);
                    a2 -= l * loadu4(bk + 8);
                    a3 -= l * loadu4(bk + 12);
                }
                acc[i - i0][0] = a0;
                acc[i - i0][1] = a1;
                acc[i - i0][2] = a2;
                acc[i - i0][3] = a3;
            }
        }
        // Triangular finish inside the panel: rows depend on each
        // other, so solve them in order against the rows just stored.
        for (std::size_t i = i0; i < i1; ++i) {
            const double *ri = fac + rowStart(i);
            V4d a0 = acc[i - i0][0];
            V4d a1 = acc[i - i0][1];
            V4d a2 = acc[i - i0][2];
            V4d a3 = acc[i - i0][3];
            const double *bk = b + i0 * m + c0;
            for (std::size_t k = i0; k < i; ++k, bk += m) {
                const double lik = ri[k];
                const V4d l = {lik, lik, lik, lik};
                a0 -= l * loadu4(bk);
                a1 -= l * loadu4(bk + 4);
                a2 -= l * loadu4(bk + 8);
                a3 -= l * loadu4(bk + 12);
            }
            const double di = ri[i];
            const V4d d = {di, di, di, di};
            double *bi = b + i * m + c0;
            storeu4(bi, a0 / d);
            storeu4(bi + 4, a1 / d);
            storeu4(bi + 8, a2 / d);
            storeu4(bi + 12, a3 / d);
        }
    }
}

/**
 * 32-column variant of solveLowerPanelBlock16: eight register
 * accumulators per output row instead of four. Each broadcast factor
 * entry feeds eight multiply-subtracts, and — more importantly — each
 * traversal of the packed factor (the dominant L2 stream once the RHS
 * tiles are L1-resident) is amortized over twice the columns, halving
 * factor traffic per solved column. Per column the operation order is
 * identical to the 16-column kernel and to solveLower, so results stay
 * bit-identical.
 */
__attribute__((noinline)) void
solveLowerPanelBlock32(const double *__restrict fac, std::size_t n,
                       double *__restrict b, std::size_t m,
                       std::size_t c0)
{
    constexpr std::size_t kPanel = 64;
    constexpr std::size_t kTile = 64;
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    V4d acc[kPanel][8];
    for (std::size_t i0 = 0; i0 < n; i0 += kPanel) {
        const std::size_t i1 = std::min(i0 + kPanel, n);
        for (std::size_t i = i0; i < i1; ++i) {
            double *bi = b + i * m + c0;
            for (std::size_t v = 0; v < 8; ++v)
                acc[i - i0][v] = loadu4(bi + 4 * v);
        }
        for (std::size_t k0 = 0; k0 < i0; k0 += kTile) {
            const std::size_t k1 = std::min(k0 + kTile, i0);
            for (std::size_t i = i0; i < i1; ++i) {
                const double *ri = fac + rowStart(i);
                V4d a0 = acc[i - i0][0];
                V4d a1 = acc[i - i0][1];
                V4d a2 = acc[i - i0][2];
                V4d a3 = acc[i - i0][3];
                V4d a4 = acc[i - i0][4];
                V4d a5 = acc[i - i0][5];
                V4d a6 = acc[i - i0][6];
                V4d a7 = acc[i - i0][7];
                const double *bk = b + k0 * m + c0;
                for (std::size_t k = k0; k < k1; ++k, bk += m) {
                    const double lik = ri[k];
                    const V4d l = {lik, lik, lik, lik};
                    a0 -= l * loadu4(bk);
                    a1 -= l * loadu4(bk + 4);
                    a2 -= l * loadu4(bk + 8);
                    a3 -= l * loadu4(bk + 12);
                    a4 -= l * loadu4(bk + 16);
                    a5 -= l * loadu4(bk + 20);
                    a6 -= l * loadu4(bk + 24);
                    a7 -= l * loadu4(bk + 28);
                }
                acc[i - i0][0] = a0;
                acc[i - i0][1] = a1;
                acc[i - i0][2] = a2;
                acc[i - i0][3] = a3;
                acc[i - i0][4] = a4;
                acc[i - i0][5] = a5;
                acc[i - i0][6] = a6;
                acc[i - i0][7] = a7;
            }
        }
        for (std::size_t i = i0; i < i1; ++i) {
            const double *ri = fac + rowStart(i);
            V4d a0 = acc[i - i0][0];
            V4d a1 = acc[i - i0][1];
            V4d a2 = acc[i - i0][2];
            V4d a3 = acc[i - i0][3];
            V4d a4 = acc[i - i0][4];
            V4d a5 = acc[i - i0][5];
            V4d a6 = acc[i - i0][6];
            V4d a7 = acc[i - i0][7];
            const double *bk = b + i0 * m + c0;
            for (std::size_t k = i0; k < i; ++k, bk += m) {
                const double lik = ri[k];
                const V4d l = {lik, lik, lik, lik};
                a0 -= l * loadu4(bk);
                a1 -= l * loadu4(bk + 4);
                a2 -= l * loadu4(bk + 8);
                a3 -= l * loadu4(bk + 12);
                a4 -= l * loadu4(bk + 16);
                a5 -= l * loadu4(bk + 20);
                a6 -= l * loadu4(bk + 24);
                a7 -= l * loadu4(bk + 28);
            }
            const double di = ri[i];
            const V4d d = {di, di, di, di};
            double *bi = b + i * m + c0;
            storeu4(bi, a0 / d);
            storeu4(bi + 4, a1 / d);
            storeu4(bi + 8, a2 / d);
            storeu4(bi + 12, a3 / d);
            storeu4(bi + 16, a4 / d);
            storeu4(bi + 20, a5 / d);
            storeu4(bi + 24, a6 / d);
            storeu4(bi + 28, a7 / d);
        }
    }
}

/**
 * Backward substitution (L^T X = B) for one 16-column block: the
 * mirror of solveLowerPanelBlock16, i descending with the inner k-loop
 * walking column i of the packed factor (entries L(k, i), k > i).
 * The factor accesses are strided — rowStart(k) + i advances by k+1
 * per step — but the sixteen RHS lanes amortize each factor load just
 * as in the forward kernel. Per column j the operation order (k
 * ascending from i+1, multiply then subtract, final divide) matches
 * the backward half of Cholesky::solve exactly, so results are
 * bit-identical to the scalar path.
 */
__attribute__((noinline)) void
solveUpperBlock16(const double *__restrict fac, std::size_t n,
                  double *__restrict b, std::size_t m, std::size_t c0)
{
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double *bi = b + i * m + c0;
        V4d a0 = loadu4(bi);
        V4d a1 = loadu4(bi + 4);
        V4d a2 = loadu4(bi + 8);
        V4d a3 = loadu4(bi + 12);
        const double *bk = b + (i + 1) * m + c0;
        std::size_t fk = rowStart(i + 1) + i;
        for (std::size_t k = i + 1; k < n; ++k, bk += m, fk += k) {
            const double lki = fac[fk];
            const V4d l = {lki, lki, lki, lki};
            a0 -= l * loadu4(bk);
            a1 -= l * loadu4(bk + 4);
            a2 -= l * loadu4(bk + 8);
            a3 -= l * loadu4(bk + 12);
        }
        const double di = fac[rowStart(i) + i];
        const V4d d = {di, di, di, di};
        storeu4(bi, a0 / d);
        storeu4(bi + 4, a1 / d);
        storeu4(bi + 8, a2 / d);
        storeu4(bi + 12, a3 / d);
    }
}

/**
 * One row of the cross-squared-distance matrix for one 16-column
 * block: dot products of point a_i against sixteen transposed b
 * columns accumulate in four register-resident vector lanes, then the
 * norm decomposition (|a|^2 + |b|^2) - 2 a.b lands with a vector
 * clamp at zero. Per lane j the arithmetic (k-ascending
 * multiply-accumulate from zero, norm sum before the doubled dot is
 * subtracted, clamp spelled as the same compare-select) matches
 * crossSquaredDistancesNaive exactly, so entries are bit-identical to
 * the scalar oracle.
 */
__attribute__((noinline)) void
crossSquaredDistancesBlock16(const double *__restrict ai,
                             double a_norm, const double *__restrict bt,
                             const double *__restrict b_norms,
                             std::size_t nb, std::size_t dim,
                             double *__restrict out, std::size_t c0)
{
    V4d d0 = {0.0, 0.0, 0.0, 0.0};
    V4d d1 = d0, d2 = d0, d3 = d0;
    const double *btk = bt + c0;
    for (std::size_t k = 0; k < dim; ++k, btk += nb) {
        const double av = ai[k];
        const V4d a = {av, av, av, av};
        d0 += a * loadu4(btk);
        d1 += a * loadu4(btk + 4);
        d2 += a * loadu4(btk + 8);
        d3 += a * loadu4(btk + 12);
    }
    const V4d an = {a_norm, a_norm, a_norm, a_norm};
    const V4d two = {2.0, 2.0, 2.0, 2.0};
    const V4d zero = {0.0, 0.0, 0.0, 0.0};
    V4d r0 = (an + loadu4(b_norms + c0)) - two * d0;
    V4d r1 = (an + loadu4(b_norms + c0 + 4)) - two * d1;
    V4d r2 = (an + loadu4(b_norms + c0 + 8)) - two * d2;
    V4d r3 = (an + loadu4(b_norms + c0 + 12)) - two * d3;
    r0 = r0 < zero ? zero : r0;
    r1 = r1 < zero ? zero : r1;
    r2 = r2 < zero ? zero : r2;
    r3 = r3 < zero ? zero : r3;
    storeu4(out + c0, r0);
    storeu4(out + c0 + 4, r1);
    storeu4(out + c0 + 8, r2);
    storeu4(out + c0 + 12, r3);
}
#else
/** Portable fallback of the 16-column block kernel. */
void
solveLowerBlock16(const double *fac, std::size_t n, double *b,
                  std::size_t m, std::size_t c0)
{
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac + rowStart(i);
        double *bi = b + i * m + c0;
        double acc[16];
        for (std::size_t j = 0; j < 16; ++j)
            acc[j] = bi[j];
        for (std::size_t k = 0; k < i; ++k) {
            const double lik = ri[k];
            const double *bk = b + k * m + c0;
            for (std::size_t j = 0; j < 16; ++j)
                acc[j] -= lik * bk[j];
        }
        const double di = ri[i];
        for (std::size_t j = 0; j < 16; ++j)
            bi[j] = acc[j] / di;
    }
}

/** Portable fallback: the flat kernel already is the panel kernel's
 *  arithmetic, just without the cache-aware schedule. */
void
solveLowerPanelBlock16(const double *fac, std::size_t n, double *b,
                       std::size_t m, std::size_t c0)
{
    solveLowerBlock16(fac, n, b, m, c0);
}

/** Portable fallback: two adjacent 16-column blocks (per-column
 *  arithmetic is the same regardless of the grouping). */
void
solveLowerPanelBlock32(const double *fac, std::size_t n, double *b,
                       std::size_t m, std::size_t c0)
{
    solveLowerBlock16(fac, n, b, m, c0);
    solveLowerBlock16(fac, n, b, m, c0 + 16);
}

/** Portable fallback of the 16-column backward block kernel. */
void
solveUpperBlock16(const double *fac, std::size_t n, double *b,
                  std::size_t m, std::size_t c0)
{
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double *bi = b + i * m + c0;
        double acc[16];
        for (std::size_t j = 0; j < 16; ++j)
            acc[j] = bi[j];
        for (std::size_t k = i + 1; k < n; ++k) {
            const double lki = fac[rowStart(k) + i];
            const double *bk = b + k * m + c0;
            for (std::size_t j = 0; j < 16; ++j)
                acc[j] -= lki * bk[j];
        }
        const double di = fac[rowStart(i) + i];
        for (std::size_t j = 0; j < 16; ++j)
            bi[j] = acc[j] / di;
    }
}

/** Portable fallback of the 16-column cross-distance block kernel. */
void
crossSquaredDistancesBlock16(const double *ai, double a_norm,
                             const double *bt, const double *b_norms,
                             std::size_t nb, std::size_t dim,
                             double *out, std::size_t c0)
{
    double acc[16];
    for (std::size_t j = 0; j < 16; ++j)
        acc[j] = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
        const double av = ai[k];
        const double *btk = bt + k * nb + c0;
        for (std::size_t j = 0; j < 16; ++j)
            acc[j] += av * btk[j];
    }
    for (std::size_t j = 0; j < 16; ++j) {
        const double d2 = (a_norm + b_norms[c0 + j]) - 2.0 * acc[j];
        out[c0 + j] = d2 < 0.0 ? 0.0 : d2;
    }
}
#endif

} // namespace

void
solveLowerPackedBatch(const double *fac, std::size_t n, double *b,
                      std::size_t m)
{
    constexpr std::size_t kBlock = 16;
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    std::size_t c0 = 0;
    // Widest kernel first: 32-column panels halve factor traffic per
    // solved column, then one 16-column block mops up, then scalar.
    for (; c0 + 2 * kBlock <= m; c0 += 2 * kBlock)
        solveLowerPanelBlock32(fac, n, b, m, c0);
    for (; c0 + kBlock <= m; c0 += kBlock)
        solveLowerPanelBlock16(fac, n, b, m, c0);
    // Remainder columns: plain scalar forward substitution per column
    // (exactly the solveLower op order). Kept structurally distinct
    // from the block kernel so identical-code folding cannot merge
    // them — see solveLowerPanelBlock16.
    for (std::size_t j = c0; j < m; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const double *ri = fac + rowStart(i);
            double s = b[i * m + j];
            for (std::size_t k = 0; k < i; ++k)
                s -= ri[k] * b[k * m + j];
            b[i * m + j] = s / ri[i];
        }
    }
}

void
solveUpperPackedBatch(const double *fac, std::size_t n, double *b,
                      std::size_t m)
{
    constexpr std::size_t kBlock = 16;
    const auto rowStart = [](std::size_t i) { return i * (i + 1) / 2; };
    std::size_t c0 = 0;
    for (; c0 + kBlock <= m; c0 += kBlock)
        solveUpperBlock16(fac, n, b, m, c0);
    // Remainder columns: plain scalar backward substitution per column
    // (exactly the op order of the backward half of Cholesky::solve).
    // Kept structurally distinct from the block kernel so identical-
    // code folding cannot merge them — see solveLowerPanelBlock16.
    for (std::size_t j = c0; j < m; ++j) {
        for (std::size_t ii = n; ii > 0; --ii) {
            const std::size_t i = ii - 1;
            double s = b[i * m + j];
            for (std::size_t k = i + 1; k < n; ++k)
                s -= fac[rowStart(k) + i] * b[k * m + j];
            b[i * m + j] = s / fac[rowStart(i) + i];
        }
    }
}

void
rowSquaredNorms(const double *a, std::size_t n, std::size_t dim,
                double *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double *ai = a + i * dim;
        double s = 0.0;
        for (std::size_t k = 0; k < dim; ++k)
            s += ai[k] * ai[k];
        out[i] = s;
    }
}

void
crossSquaredDistances(const double *a, const double *a_norms,
                      std::size_t na, const double *bt,
                      const double *b_norms, std::size_t nb,
                      std::size_t dim, double *out)
{
    constexpr std::size_t kBlock = 16;
    const std::size_t full = nb - nb % kBlock;
    for (std::size_t i = 0; i < na; ++i) {
        const double *ai = a + i * dim;
        double *oi = out + i * nb;
        for (std::size_t c0 = 0; c0 < full; c0 += kBlock)
            crossSquaredDistancesBlock16(ai, a_norms[i], bt, b_norms,
                                         nb, dim, oi, c0);
        // Remainder columns: the naive per-pair decomposition (same
        // arithmetic as crossSquaredDistancesNaive), kept structurally
        // distinct from the block kernel.
        for (std::size_t j = full; j < nb; ++j) {
            double s = 0.0;
            for (std::size_t k = 0; k < dim; ++k)
                s += ai[k] * bt[k * nb + j];
            const double d2 = (a_norms[i] + b_norms[j]) - 2.0 * s;
            oi[j] = d2 < 0.0 ? 0.0 : d2;
        }
    }
}

void
crossSquaredDistancesNaive(const double *a, const double *a_norms,
                           std::size_t na, const double *b,
                           const double *b_norms, std::size_t nb,
                           std::size_t dim, double *out)
{
    for (std::size_t i = 0; i < na; ++i) {
        const double *ai = a + i * dim;
        for (std::size_t j = 0; j < nb; ++j) {
            const double *bj = b + j * dim;
            double s = 0.0;
            for (std::size_t k = 0; k < dim; ++k)
                s += ai[k] * bj[k];
            const double d2 = (a_norms[i] + b_norms[j]) - 2.0 * s;
            out[i * nb + j] = d2 < 0.0 ? 0.0 : d2;
        }
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                out(i, j) += a * other(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    assert(cols_ == v.size());
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            s += (*this)(i, j) * v[j];
        out[i] = s;
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Cholesky::Cholesky(const Matrix &a, double jitter)
{
    assert(a.rows() == a.cols());
    // Try plain factorization first, then escalate jitter by 10x up to a
    // generous cap; GP kernel matrices with duplicated points need this.
    if (factor(a, 0.0)) {
        ok_ = true;
        return;
    }
    double j = jitter;
    for (int attempt = 0; attempt < 12; ++attempt, j *= 10.0) {
        if (factor(a, j)) {
            ok_ = true;
            jitterUsed_ = j;
            return;
        }
    }
    ok_ = false;
}

bool
Cholesky::factor(const Matrix &a, double jitter)
{
    const std::size_t n = a.rows();
    n_ = n;
    fac_.assign(rowStart(n), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double *ri = fac_.data() + rowStart(i);
        for (std::size_t j = 0; j <= i; ++j) {
            const double *rj = fac_.data() + rowStart(j);
            double s = a(i, j);
            if (i == j)
                s += jitter;
            for (std::size_t k = 0; k < j; ++k)
                s -= ri[k] * rj[k];
            if (i == j) {
                if (s <= 0.0 || !std::isfinite(s))
                    return false;
                ri[i] = std::sqrt(s);
            } else {
                ri[j] = s / rj[j];
            }
        }
    }
    return true;
}

void
Cholesky::reserve(std::size_t max_dim)
{
    fac_.reserve(rowStart(max_dim));
}

bool
Cholesky::append(const std::vector<double> &col)
{
    assert(ok_);
    const std::size_t n = n_;
    assert(col.size() == n + 1);

    // Grow the packed storage by one row and run the forward
    // substitution l = L^-1 k directly in place — with reserved
    // capacity this allocates and copies nothing.
    const std::size_t base = fac_.size();
    fac_.resize(base + n + 1);
    double *row = fac_.data() + base;
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac_.data() + rowStart(i);
        double s = col[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= ri[k] * row[k];
        row[i] = s / ri[i];
    }
    double s = col[n] + jitterUsed_;
    for (std::size_t k = 0; k < n; ++k)
        s -= row[k] * row[k];
    if (s <= 0.0 || !std::isfinite(s)) {
        fac_.resize(base);  // leave the factor unchanged
        return false;
    }
    row[n] = std::sqrt(s);
    ++n_;
    return true;
}

bool
Cholesky::removeRow(std::size_t k)
{
    assert(ok_);
    const std::size_t n = n_;
    assert(k < n && n >= 2);

    const std::size_t m = n - 1 - k;  // trailing-block dimension
    // Save the deleted column's sub-diagonal entries u_i = L(i, k); the
    // trailing block must absorb u u^T to stay a factor of the
    // punctured matrix. Validate the whole update on a scratch copy of
    // the trailing block first, so a failed downdate leaves the factor
    // untouched.
    std::vector<double> u(m);
    for (std::size_t i = 0; i < m; ++i)
        u[i] = at(k + 1 + i, k);

    // Shifted rows of the punctured factor, packed row-major: scratch
    // row i is old row k+1+i with column k deleted, so it has k+1+i
    // entries (new columns 0..k+i). Validating the update here first
    // means a failed downdate leaves the factor untouched.
    const auto shiftedStart = [k](std::size_t i) {
        return i * (k + 1) + i * (i - 1) / 2;
    };
    std::vector<double> block(shiftedStart(m));
    {
        std::size_t w = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const double *src = fac_.data() + rowStart(k + 1 + i);
            for (std::size_t j = 0; j < k; ++j)
                block[w++] = src[j];
            for (std::size_t j = k + 1; j <= k + 1 + i; ++j)
                block[w++] = src[j];
        }
    }
    const auto blockAt = [&](std::size_t i, std::size_t j) -> double & {
        return block[shiftedStart(i) + j];
    };

    // Rank-1 update L' L'^T = L L^T + u u^T on the trailing block's
    // lower-right (m x m) corner via Givens-style rotations, one
    // column at a time. The update preserves positive definiteness in
    // exact arithmetic; only overflow/underflow under extreme dynamic
    // range can break it, which the finite/positive checks catch.
    for (std::size_t j = 0; j < m; ++j) {
        double &ljj = blockAt(j, k + j);
        const double r = std::sqrt(ljj * ljj + u[j] * u[j]);
        if (!(r > 0.0) || !std::isfinite(r))
            return false;
        const double c = r / ljj;
        const double s = u[j] / ljj;
        ljj = r;
        for (std::size_t i = j + 1; i < m; ++i) {
            double &lij = blockAt(i, k + j);
            lij = (lij + s * u[i]) / c;
            u[i] = c * u[i] - s * lij;
            if (!std::isfinite(lij))
                return false;
        }
    }

    // Commit: rows 0..k-1 stay in place; the validated trailing block
    // shifts into rows k..k+m-1. Writes land strictly below the packed
    // offsets they replace, and the factor shrinks within its own
    // storage (capacity is retained for future appends).
    std::size_t r2 = 0;
    for (std::size_t i = 0; i < m; ++i) {
        double *dst = fac_.data() + rowStart(k + i);
        for (std::size_t j = 0; j <= k + i; ++j)
            dst[j] = block[r2++];
    }
    --n_;
    fac_.resize(rowStart(n_));
    return true;
}

void
Cholesky::solveLowerBatch(Matrix &b) const
{
    const std::size_t n = n_;
    const std::size_t m = b.cols();
    assert(b.rows() == n);
    // Forward substitution over fixed-width column blocks. Within a
    // block, row i's partial sums live in a register-resident
    // accumulator for the whole k-loop, so each inner iteration
    // touches one factor entry and one 128-byte slice of an earlier
    // row — a working set that stays cache-resident where a
    // full-width sweep would re-stream the entire RHS matrix from L2
    // for every row. Per column the operation order (k ascending,
    // multiply-subtract, final divide) matches solveLower exactly, so
    // results are bit-identical to the scalar path at any block
    // geometry.
    if (m == 0 || n == 0)
        return;
    solveLowerPackedBatch(fac_.data(), n, &b(0, 0), m);
}

void
Cholesky::solveUpperBatch(Matrix &b) const
{
    const std::size_t n = n_;
    const std::size_t m = b.cols();
    assert(b.rows() == n);
    // Backward substitution over the same fixed-width column blocks as
    // solveLowerBatch; per column the operation order matches the
    // backward half of solve() exactly, so forward + backward on one
    // column is bit-identical to solve().
    if (m == 0 || n == 0)
        return;
    solveUpperPackedBatch(fac_.data(), n, &b(0, 0), m);
}

Matrix
Cholesky::lower() const
{
    Matrix out(n_, n_);
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = 0; j <= i; ++j)
            out(i, j) = at(i, j);
    return out;
}

std::vector<double>
Cholesky::solveLower(const std::vector<double> &b) const
{
    const std::size_t n = n_;
    assert(b.size() == n);
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = fac_.data() + rowStart(i);
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= ri[k] * y[k];
        y[i] = s / ri[i];
    }
    return y;
}

std::vector<double>
Cholesky::solve(const std::vector<double> &b) const
{
    const std::size_t n = n_;
    std::vector<double> y = solveLower(b);
    // Backward substitution with L^T.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double s = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            s -= at(k, i) * x[k];
        x[i] = s / at(i, i);
    }
    return x;
}

double
Cholesky::logDet() const
{
    double s = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        s += std::log(at(i, i));
    return 2.0 * s;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace archgym
