/**
 * @file
 * Small dense linear algebra kernel backing the Bayesian-optimization
 * agent's Gaussian-process surrogate: row-major matrix storage, Cholesky
 * factorization, and triangular solves.
 *
 * The GP posterior requires solving K x = y for a symmetric positive
 * definite kernel matrix K. BO's cubic cost in the sample count, which the
 * paper calls out as its main scalability limit, lives here. The
 * window-append case (one observation added to the training set) is
 * served by Cholesky::append, a rank-1 bordering update that extends
 * the factor in O(n^2) instead of refactorizing in O(n^3); the
 * window-evict case (one observation dropped from the training set) by
 * Cholesky::removeRow, a rank-1 downdate built from Givens-style
 * rotations on the packed factor. Together they make a sliding-window
 * GP O(n^2) per sample in steady state. Batched posterior queries are
 * served by solveLowerBatch, a multi-RHS forward substitution that
 * makes one pass over the factor for a whole candidate set, and by its
 * backward mirror solveUpperBatch (L^T X = B), which together give
 * K^-1 K* for joint-posterior covariance blocks. The kernel matrix
 * build itself is served by crossSquaredDistances, a blocked GEMM-style
 * kernel computing |a|^2 + |b|^2 - 2 a.b for a whole point block.
 */

#ifndef ARCHGYM_MATHUTIL_MATRIX_H
#define ARCHGYM_MATHUTIL_MATRIX_H

#include <cstddef>
#include <new>
#include <vector>

namespace archgym {

/**
 * Minimal allocator returning Align-byte-aligned storage. The dense
 * kernels stream rows with 32-byte vector loads; the default
 * allocator's 16-byte alignment makes every such load straddle an
 * alignment boundary (and, depending on where the heap lands, line up
 * in 4 KiB-aliasing patterns with the factor), which costs a
 * measurable fraction of the blocked-solve throughput.
 */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    using value_type = T;
    /** Explicit rebind: the non-type Align parameter defeats the
     *  allocator_traits default. */
    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {}

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(Align)));
    }
    void deallocate(T *p, std::size_t n)
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
    }
    template <typename U>
    bool operator==(const AlignedAllocator<U, Align> &) const
    {
        return true;
    }
    template <typename U>
    bool operator!=(const AlignedAllocator<U, Align> &) const
    {
        return false;
    }
};

/** 64-byte (cache-line) aligned buffer of doubles. */
using AlignedVector = std::vector<double, AlignedAllocator<double, 64>>;

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Matrix product; dimensions must agree. */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product. */
    std::vector<double> multiply(const std::vector<double> &v) const;

    Matrix transpose() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    AlignedVector data_;
};

/**
 * Cholesky factorization of a symmetric positive definite matrix,
 * A = L L^T with L lower triangular.
 *
 * Construction adds escalating jitter to the diagonal if the matrix is not
 * numerically positive definite, which is the standard GP stabilization.
 *
 * The factor is stored packed (lower triangle only, row-major), so the
 * bordering update `append` just writes the new row at the end of the
 * buffer — with `reserve`d capacity it never reallocates or copies the
 * existing factor, keeping the per-append cost at exactly the O(n^2)
 * forward substitution.
 */
class Cholesky
{
  public:
    /**
     * Factor the matrix.
     * @param a        symmetric matrix to factor (only lower half is read)
     * @param jitter   initial diagonal jitter added on failure
     */
    explicit Cholesky(const Matrix &a, double jitter = 1e-10);

    /** Whether factorization succeeded (possibly with jitter). */
    bool ok() const { return ok_; }

    /** Dimension n of the factored matrix. */
    std::size_t size() const { return n_; }

    /** Total jitter that had to be added to the diagonal. */
    double jitterUsed() const { return jitterUsed_; }

    /**
     * Pre-allocate factor storage for appends up to max_dim, so no
     * append below that dimension reallocates. The BO agent reserves
     * its sliding-window capacity once, up front.
     */
    void reserve(std::size_t max_dim);

    /**
     * Rank-1 bordering update: extend the factorization of the n x n
     * matrix A to the (n+1) x (n+1) matrix [[A, k], [k^T, d]] in
     * O(n^2), where a full refactorization would cost O(n^3):
     *
     *   L' = [[L, 0], [l^T, s]],  l = L^{-1} k,  s = sqrt(d - l^T l).
     *
     * The new row is written directly into the packed factor storage
     * (no copy of the existing factor). Any jitter used by the original
     * factorization is applied to the new diagonal entry as well,
     * matching what a full refactorization with that jitter would
     * produce.
     *
     * @param col  the new column: k (n entries) followed by the new
     *             diagonal element d
     * @return false — leaving the factor unchanged — if the bordered
     *         matrix is not numerically positive definite.
     * @pre ok() && col.size() == size() + 1
     */
    bool append(const std::vector<double> &col);

    /**
     * Rank-1 downdate: remove row/column k of the factored matrix A in
     * O((n-k)^2), where refactorizing the punctured matrix would cost
     * O(n^3). Rows above k are untouched; rows below shift up with
     * column k deleted, and the trailing block absorbs the deleted
     * column's outer product through a sequence of Givens-style
     * rotations (the classic rank-1 Cholesky update, which preserves
     * positive definiteness):
     *
     *   L33' L33'^T = L33 L33^T + l32 l32^T,  l32 = old column k below
     *                                               the diagonal.
     *
     * The factor shrinks in place inside the packed storage (no
     * reallocation; freed capacity is retained for future appends).
     * Any jitter used by the original factorization stays baked into
     * the surviving diagonal, matching a fresh factorization of the
     * punctured matrix with that jitter.
     *
     * @return false — leaving the factor unchanged — if the rotations
     *         produce a non-finite or non-positive diagonal entry
     *         (possible only under extreme dynamic range; callers fall
     *         back to refactorizing).
     * @pre ok() && k < size() && size() >= 2
     */
    bool removeRow(std::size_t k);

    /** The lower-triangular factor, expanded to a dense matrix. */
    Matrix lower() const;

    /** Solve A x = b via forward + backward substitution. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /** Solve L y = b (forward substitution). */
    std::vector<double> solveLower(const std::vector<double> &b) const;

    /**
     * Multi-RHS forward substitution, in place: overwrite the n x m
     * matrix B with Y where L Y = B (each column an independent RHS).
     *
     * One pass over the packed factor serves every column: the inner
     * loops run along B's contiguous rows, so solving m right-hand
     * sides costs one factor traversal instead of m strided ones —
     * this is what batched GP posterior queries ride on. Per column,
     * the arithmetic (order of operations included) is identical to
     * solveLower, so results are bit-identical to the scalar path.
     *
     * @pre b.rows() == size()
     */
    void solveLowerBatch(Matrix &b) const;

    /**
     * Multi-RHS backward substitution, in place: overwrite the n x m
     * matrix B with X where L^T X = B (each column an independent
     * RHS). The backward mirror of solveLowerBatch: per column the
     * operation order (i descending, k ascending from i+1,
     * multiply-subtract, final divide) matches the backward half of
     * solve() exactly, so chaining solveLowerBatch then
     * solveUpperBatch on a single column is bit-identical to solve().
     *
     * @pre b.rows() == size()
     */
    void solveUpperBatch(Matrix &b) const;

    /** The packed lower-triangular factor (row i at i*(i+1)/2, i+1
     *  entries); valid while ok(). For callers that stage the factor
     *  in their own arena (see solveLowerPackedBatch). */
    const double *packedData() const { return fac_.data(); }

    /** log det(A) = 2 sum log L_ii. */
    double logDet() const;

  private:
    bool factor(const Matrix &a, double jitter);

    /** Start of packed row i (row i holds entries L(i, 0..i)). */
    static std::size_t rowStart(std::size_t i) { return i * (i + 1) / 2; }
    double at(std::size_t i, std::size_t j) const
    {
        return fac_[rowStart(i) + j];
    }

    std::size_t n_ = 0;
    AlignedVector fac_;  ///< packed lower triangle, row-major
    bool ok_ = false;
    double jitterUsed_ = 0.0;
};

/**
 * Multi-RHS forward substitution on raw storage: overwrite the n x m
 * row-major array b with Y where L Y = b, L given as a packed lower
 * triangle (Cholesky::packedData layout). Exactly the kernel behind
 * Cholesky::solveLowerBatch, exposed so callers can co-locate the
 * factor and the right-hand sides in one arena — keeping the two hot
 * streams adjacent is worth ~3x on large candidate sweeps on machines
 * where separately allocated buffers fall into unfavourable cache
 * placements. Per column the operation order matches
 * Cholesky::solveLower, so results are bit-identical to the scalar
 * path.
 */
void solveLowerPackedBatch(const double *packed_lower, std::size_t n,
                           double *b, std::size_t m);

/**
 * Multi-RHS backward substitution on raw storage: overwrite the n x m
 * row-major array b with X where L^T X = b, L given as a packed lower
 * triangle (Cholesky::packedData layout). The kernel behind
 * Cholesky::solveUpperBatch, exposed for the same arena co-location
 * reason as solveLowerPackedBatch. Per column the operation order
 * matches the backward half of Cholesky::solve, so forward + backward
 * on one column reproduces solve() bit for bit.
 */
void solveUpperPackedBatch(const double *packed_lower, std::size_t n,
                           double *b, std::size_t m);

/**
 * Squared norm of each row of the n x dim row-major block a, written
 * to out (n entries). Per row the accumulation is the plain k-ascending
 * sum of squares — the exact arithmetic crossSquaredDistances assumes
 * for its norm inputs.
 */
void rowSquaredNorms(const double *a, std::size_t n, std::size_t dim,
                     double *out);

/**
 * All-pairs squared Euclidean distances between two point blocks via
 * the GEMM decomposition d2(i,j) = (|a_i|^2 + |b_j|^2) - 2 a_i.b_j,
 * clamped at zero (catastrophic cancellation between the norm and dot
 * terms can drive tiny true distances a few ulps negative). One
 * blocked pass computes the whole na x nb matrix: per (i, j) the dot
 * product runs k-ascending with independent vector lanes over j, so
 * every entry is bit-identical to crossSquaredDistancesNaive — the
 * per-pair scalar loop with the same decomposition — at any block
 * geometry.
 *
 * This is the kernel-matrix build behind GaussianProcess::predictBatch:
 * O(na nb dim) flops that previously hid behind per-pair
 * subtract-square loops over pointer-chased std::vectors.
 *
 * @param a        na x dim row-major point block
 * @param a_norms  per-row squared norms of a (rowSquaredNorms layout)
 * @param bt       dim x nb row-major: the b point block TRANSPOSED, so
 *                 vector lanes over j read contiguous memory
 * @param b_norms  per-row squared norms of b (nb entries)
 * @param out      na x nb row-major squared distances
 */
void crossSquaredDistances(const double *a, const double *a_norms,
                           std::size_t na, const double *bt,
                           const double *b_norms, std::size_t nb,
                           std::size_t dim, double *out);

/**
 * Reference implementation of crossSquaredDistances: same |a|^2 +
 * |b|^2 - 2 a.b decomposition (NOT the subtract-and-square form — the
 * two differ in roundoff), per pair, with b row-major (nb x dim). The
 * in-tree oracle for the blocked kernel's equivalence suite.
 */
void crossSquaredDistancesNaive(const double *a, const double *a_norms,
                                std::size_t na, const double *b,
                                const double *b_norms, std::size_t nb,
                                std::size_t dim, double *out);

/** Dot product. @pre a.size() == b.size() */
double dot(const std::vector<double> &a, const std::vector<double> &b);

/** Squared Euclidean distance between two vectors. */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

} // namespace archgym

#endif // ARCHGYM_MATHUTIL_MATRIX_H
