/**
 * @file
 * Small dense linear algebra kernel backing the Bayesian-optimization
 * agent's Gaussian-process surrogate: row-major matrix storage, Cholesky
 * factorization, and triangular solves.
 *
 * The GP posterior requires solving K x = y for a symmetric positive
 * definite kernel matrix K. BO's cubic cost in the sample count, which the
 * paper calls out as its main scalability limit, lives here. The
 * window-append case (one observation added to the training set) is
 * served by Cholesky::append, a rank-1 bordering update that extends
 * the factor in O(n^2) instead of refactorizing in O(n^3).
 */

#ifndef ARCHGYM_MATHUTIL_MATRIX_H
#define ARCHGYM_MATHUTIL_MATRIX_H

#include <cstddef>
#include <vector>

namespace archgym {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Matrix product; dimensions must agree. */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product. */
    std::vector<double> multiply(const std::vector<double> &v) const;

    Matrix transpose() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Cholesky factorization of a symmetric positive definite matrix,
 * A = L L^T with L lower triangular.
 *
 * Construction adds escalating jitter to the diagonal if the matrix is not
 * numerically positive definite, which is the standard GP stabilization.
 *
 * The factor is stored packed (lower triangle only, row-major), so the
 * bordering update `append` just writes the new row at the end of the
 * buffer — with `reserve`d capacity it never reallocates or copies the
 * existing factor, keeping the per-append cost at exactly the O(n^2)
 * forward substitution.
 */
class Cholesky
{
  public:
    /**
     * Factor the matrix.
     * @param a        symmetric matrix to factor (only lower half is read)
     * @param jitter   initial diagonal jitter added on failure
     */
    explicit Cholesky(const Matrix &a, double jitter = 1e-10);

    /** Whether factorization succeeded (possibly with jitter). */
    bool ok() const { return ok_; }

    /** Dimension n of the factored matrix. */
    std::size_t size() const { return n_; }

    /** Total jitter that had to be added to the diagonal. */
    double jitterUsed() const { return jitterUsed_; }

    /**
     * Pre-allocate factor storage for appends up to max_dim, so no
     * append below that dimension reallocates. The BO agent reserves
     * its sliding-window capacity once, up front.
     */
    void reserve(std::size_t max_dim);

    /**
     * Rank-1 bordering update: extend the factorization of the n x n
     * matrix A to the (n+1) x (n+1) matrix [[A, k], [k^T, d]] in
     * O(n^2), where a full refactorization would cost O(n^3):
     *
     *   L' = [[L, 0], [l^T, s]],  l = L^{-1} k,  s = sqrt(d - l^T l).
     *
     * The new row is written directly into the packed factor storage
     * (no copy of the existing factor). Any jitter used by the original
     * factorization is applied to the new diagonal entry as well,
     * matching what a full refactorization with that jitter would
     * produce.
     *
     * @param col  the new column: k (n entries) followed by the new
     *             diagonal element d
     * @return false — leaving the factor unchanged — if the bordered
     *         matrix is not numerically positive definite.
     * @pre ok() && col.size() == size() + 1
     */
    bool append(const std::vector<double> &col);

    /** The lower-triangular factor, expanded to a dense matrix. */
    Matrix lower() const;

    /** Solve A x = b via forward + backward substitution. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /** Solve L y = b (forward substitution). */
    std::vector<double> solveLower(const std::vector<double> &b) const;

    /** log det(A) = 2 sum log L_ii. */
    double logDet() const;

  private:
    bool factor(const Matrix &a, double jitter);

    /** Start of packed row i (row i holds entries L(i, 0..i)). */
    static std::size_t rowStart(std::size_t i) { return i * (i + 1) / 2; }
    double at(std::size_t i, std::size_t j) const
    {
        return fac_[rowStart(i) + j];
    }

    std::size_t n_ = 0;
    std::vector<double> fac_;  ///< packed lower triangle, row-major
    bool ok_ = false;
    double jitterUsed_ = 0.0;
};

/** Dot product. @pre a.size() == b.size() */
double dot(const std::vector<double> &a, const std::vector<double> &b);

/** Squared Euclidean distance between two vectors. */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

} // namespace archgym

#endif // ARCHGYM_MATHUTIL_MATRIX_H
