/**
 * @file
 * Deterministic pseudo-random number generation for ArchGym.
 *
 * All stochastic components (agents, trace generators, dataset sampling)
 * draw from this RNG so that every experiment in the repository is exactly
 * reproducible from a single 64-bit seed. The generator is xoshiro256++,
 * seeded through SplitMix64 as recommended by its authors.
 */

#ifndef ARCHGYM_MATHUTIL_RNG_H
#define ARCHGYM_MATHUTIL_RNG_H

#include <cstdint>
#include <cmath>
#include <cstddef>
#include <vector>

namespace archgym {

/**
 * Counter-based seed expander used to initialize the main generator state.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64-bit value in the sequence. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256++ generator: fast, high-quality, 2^256-1 period.
 *
 * Satisfies the C++ UniformRandomBitGenerator requirements so it can also
 * be plugged into <random> distributions when needed, though the helper
 * methods below cover everything ArchGym uses.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9ec2b1d1a1b5cdfULL)
    {
        SplitMix64 sm(seed);
        for (auto &s : state_)
            s = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) +
                                     state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high bits -> double mantissa.
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire's nearly-divisionless bounded sampling.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto l = static_cast<std::uint64_t>(m);
        if (l < n) {
            const std::uint64_t t = (0 - n) % n;
            while (l < t) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * n;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Standard normal variate via Marsaglia polar method. */
    double
    gaussian()
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double factor = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * factor;
        hasSpare_ = true;
        return u * factor;
    }

    /** Gaussian with given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample an index proportionally to the given non-negative weights.
     * Falls back to uniform choice when all weights are zero.
     */
    std::size_t
    weightedIndex(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += (w > 0.0 ? w : 0.0);
        if (total <= 0.0)
            return static_cast<std::size_t>(below(weights.size()));
        double r = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            const double w = weights[i] > 0.0 ? weights[i] : 0.0;
            if (r < w)
                return i;
            r -= w;
        }
        return weights.size() - 1;
    }

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(below(i));
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace archgym

#endif // ARCHGYM_MATHUTIL_RNG_H
