/**
 * @file
 * MAESTRO-style reuse-analysis cost model.
 *
 * Given a layer and a mapping, the model derives per-operand reuse from
 * the loop order: an operand tile loaded into L1 is reused across the
 * contiguous innermost run of loops that are *irrelevant* to it (weights
 * ignore Y/X, inputs ignore K, outputs ignore C/R/S); every loop outside
 * that run forces a reload from L2. The spatially unrolled dimension is
 * processed in waves of numPEs, with multicast reuse for operands the
 * spatial dimension is irrelevant to. From the resulting per-level access
 * counts the model reports <runtime, throughput, energy, area> (Table 3).
 */

#ifndef ARCHGYM_MAESTRO_COST_MODEL_H
#define ARCHGYM_MAESTRO_COST_MODEL_H

#include "maestro/mapping.h"
#include "timeloop/workload.h"

namespace archgym::maestro {

/** Reuse the ConvLayer/network definitions (Y/X map to P/Q). */
using timeloop::ConvLayer;
using timeloop::Network;

/** Hardware constants the mapping must live within. */
struct MaestroHardware
{
    std::uint32_t l1Words = 512;       ///< per-PE buffer
    std::uint32_t l2KiloWords = 256;   ///< shared buffer
    std::uint32_t nocWordsPerCycle = 8;
    std::uint32_t dramWordsPerCycle = 2;
    double clockGhz = 1.0;

    // Energy per access (pJ/word) and area coefficients.
    double dramPj = 200.0;
    double l2Pj = 6.0;
    double l1Pj = 1.0;
    double macPj = 0.2;
    double peAreaMm2 = 0.008;
    double l1AreaMm2PerWord = 2e-5;
    double l2AreaMm2PerKiloWord = 0.04;
};

/** Cost of one (layer, mapping) pair. */
struct MappingCost
{
    double runtimeCycles = 0.0;
    double throughputMacsPerCycle = 0.0;
    double energyUj = 0.0;
    double areaMm2 = 0.0;
    double l1Required = 0.0;       ///< words per PE
    double l2Required = 0.0;       ///< words
    double dramAccesses = 0.0;     ///< words
    double l2Accesses = 0.0;       ///< words
    bool buffersFit = true;        ///< capacity respected without spills
};

/** Evaluate one layer under the mapping; always finite.
 *
 *  Re-derives the loop order and every layer extent per call — the
 *  per-step-rebuild reference path. Hot loops use the NetworkView
 *  overloads below, which are bit-identical but derive the loop-order
 *  reuse analysis once per mapping and the layer extents once ever. */
MappingCost evaluateMapping(const Mapping &mapping, const ConvLayer &layer,
                            const MaestroHardware &hw = {});

/** Sum over a network with the same mapping applied to every layer. */
MappingCost evaluateMappingOnNetwork(const Mapping &mapping,
                                     const Network &network,
                                     const MaestroHardware &hw = {});

/** Immutable per-layer extents: the dimension sizes the per-step tile
 *  clamp runs against, plus the operand counts the DRAM-traffic term
 *  re-derives per evaluation. */
struct LayerView
{
    explicit LayerView(const ConvLayer &layer);

    std::array<double, kNumDims> sizes{};  ///< indexed by Dim
    double stride = 1.0;
    double macs = 0.0;
    /** weightCount + inputCount + 2 * outputCount (DRAM words/layer). */
    double baseDramWords = 0.0;
};

/** Immutable preprocessed workload view, built once per environment and
 *  shared read-only across steps. */
class NetworkView
{
  public:
    explicit NetworkView(const Network &network);

    const std::string &name() const { return name_; }
    const std::vector<LayerView> &layers() const { return layers_; }
    double totalMacs() const { return totalMacs_; }

  private:
    std::string name_;
    std::vector<LayerView> layers_;
    double totalMacs_ = 0.0;
};

/** Bit-identical to evaluateMapping(mapping, layer, hw) for the layer
 *  the view was built from. */
MappingCost evaluateMapping(const Mapping &mapping, const LayerView &layer,
                            const MaestroHardware &hw = {});

/** Bit-identical to the Network overload: the loop-order reuse analysis
 *  (argsort + per-operand reuse runs) is derived once per mapping
 *  instead of once per layer. */
MappingCost evaluateMappingOnNetwork(const Mapping &mapping,
                                     const NetworkView &network,
                                     const MaestroHardware &hw = {});

} // namespace archgym::maestro

#endif // ARCHGYM_MAESTRO_COST_MODEL_H
