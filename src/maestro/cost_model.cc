#include "cost_model.h"

#include <algorithm>
#include <cmath>

#include "core/resilience.h"

namespace archgym::maestro {

namespace {

/** Per-dimension extents of the layer, indexed by Dim. */
std::array<double, kNumDims>
dimSizes(const ConvLayer &l)
{
    return {static_cast<double>(l.outChannels),
            static_cast<double>(l.inChannels),
            static_cast<double>(l.kernelH),
            static_cast<double>(l.kernelW),
            static_cast<double>(l.outH),
            static_cast<double>(l.outW)};
}

/** Whether the loop dimension indexes the operand. */
bool
relevant(Dim d, int operand)
{
    // operand: 0 = weights, 1 = inputs, 2 = outputs.
    switch (operand) {
      case 0:  // W[k][c][r][s]
        return d == Dim::K || d == Dim::C || d == Dim::R || d == Dim::S;
      case 1:  // I[c][y*stride + r][x*stride + s]
        return d == Dim::C || d == Dim::R || d == Dim::S || d == Dim::Y ||
               d == Dim::X;
      case 2:  // O[k][y][x]
      default:
        return d == Dim::K || d == Dim::Y || d == Dim::X;
    }
}

} // namespace

MappingCost
evaluateMapping(const Mapping &mapping, const ConvLayer &layer,
                const MaestroHardware &hw)
{
    MappingCost cost;
    const auto sizes = dimSizes(layer);

    // Clamp tiles to the layer's actual extents.
    std::array<double, kNumDims> tile;
    std::array<double, kNumDims> trips;
    for (std::size_t i = 0; i < kNumDims; ++i) {
        tile[i] = std::min(static_cast<double>(
                               std::max(1u, mapping.tile[i])),
                           sizes[i]);
        trips[i] = std::ceil(sizes[i] / tile[i]);
    }

    const double pes = std::max(1u, mapping.numPEs);
    const auto spatial = static_cast<std::size_t>(mapping.spatialDim);

    // Spatial waves: tiles of the spatial dim processed concurrently.
    const double spatialTrips = trips[spatial];
    const double waves = std::ceil(spatialTrips / pes);
    const double activePes = std::min(pes, spatialTrips);

    // --- L1 tile footprints (words) ------------------------------------
    const double tk = tile[0], tc = tile[1], tr = tile[2], ts = tile[3],
                 ty = tile[4], tx = tile[5];
    const double stride = layer.stride;
    const double inTileH = (ty - 1.0) * stride + tr;
    const double inTileW = (tx - 1.0) * stride + ts;
    const std::array<double, 3> footprint = {
        tk * tc * tr * ts,        // weights
        tc * inTileH * inTileW,   // inputs
        tk * ty * tx,             // outputs (psums)
    };
    cost.l1Required = footprint[0] + footprint[1] + footprint[2];

    // --- L2 -> L1 traffic via loop-order reuse analysis ----------------
    const auto order = mapping.loopOrder();
    std::array<double, 3> loads = {1.0, 1.0, 1.0};
    for (int op = 0; op < 3; ++op) {
        // Innermost contiguous run of irrelevant loops is reused; all
        // loops at or outside the innermost *relevant* loop multiply the
        // reload count.
        std::size_t innermostRelevant = kNumDims;  // none
        for (std::size_t pos = 0; pos < kNumDims; ++pos) {
            if (relevant(order[pos], op))
                innermostRelevant = pos;
        }
        for (std::size_t pos = 0; pos < kNumDims; ++pos) {
            if (innermostRelevant == kNumDims || pos > innermostRelevant)
                continue;  // inside the reuse run
            const auto d = static_cast<std::size_t>(order[pos]);
            if (d == spatial) {
                // Spatially unrolled: relevant operands ship distinct
                // tiles to every PE (full trip count of traffic);
                // irrelevant operands are multicast once per wave.
                loads[op] *= relevant(order[pos], op) ? trips[d] : waves;
            } else {
                loads[op] *= trips[d];
            }
        }
    }
    // Outputs are read-modify-written on every reload beyond the first.
    const double l2Traffic = loads[0] * footprint[0] +
                             loads[1] * footprint[1] +
                             (2.0 * loads[2] - 1.0) * footprint[2];

    // --- L2 capacity & DRAM traffic ------------------------------------
    // L2 must hold one wave's worth of distinct tiles plus multicast data.
    cost.l2Required = footprint[0] * activePes + footprint[1] * activePes +
                      footprint[2] * activePes;
    const double l2Cap = static_cast<double>(hw.l2KiloWords) * 1024.0;
    double spillFactor = 1.0;
    cost.buffersFit = true;
    if (cost.l1Required > hw.l1Words) {
        spillFactor *= cost.l1Required / hw.l1Words;
        cost.buffersFit = false;
    }
    if (cost.l2Required > l2Cap) {
        spillFactor *= cost.l2Required / l2Cap;
        cost.buffersFit = false;
    }
    const double dramTraffic =
        (layer.weightCount() + layer.inputCount() +
         2.0 * layer.outputCount()) *
        spillFactor;

    // --- runtime ---------------------------------------------------------
    const double macs = layer.macs();
    double temporalTiles = 1.0;
    for (std::size_t i = 0; i < kNumDims; ++i)
        if (i != spatial)
            temporalTiles *= trips[i];
    const double tileMacs = tk * tc * tr * ts * ty * tx;
    const double computeCycles = temporalTiles * waves * tileMacs;
    const double nocCycles = l2Traffic / hw.nocWordsPerCycle;
    const double dramCycles = dramTraffic / hw.dramWordsPerCycle;
    cost.runtimeCycles =
        std::max({computeCycles, nocCycles, dramCycles, 1.0});
    cost.throughputMacsPerCycle = macs / cost.runtimeCycles;

    // --- energy ----------------------------------------------------------
    const double l1Accesses = 3.0 * macs;
    cost.dramAccesses = dramTraffic;
    cost.l2Accesses = l2Traffic;
    const double energyPj = dramTraffic * hw.dramPj + l2Traffic * hw.l2Pj +
                            l1Accesses * hw.l1Pj + macs * hw.macPj;
    cost.energyUj = energyPj / 1e6;

    // --- area --------------------------------------------------------------
    cost.areaMm2 = pes * hw.peAreaMm2 +
                   pes * hw.l1Words * hw.l1AreaMm2PerWord +
                   hw.l2KiloWords * hw.l2AreaMm2PerKiloWord;
    return cost;
}

MappingCost
evaluateMappingOnNetwork(const Mapping &mapping, const Network &network,
                         const MaestroHardware &hw)
{
    MappingCost total;
    total.buffersFit = true;
    for (const auto &layer : network.layers) {
        // Cooperative run deadline (core/resilience.h): per-layer, the
        // natural stride of the mapper evaluation.
        resilience::checkpoint();
        const MappingCost c = evaluateMapping(mapping, layer, hw);
        total.runtimeCycles += c.runtimeCycles;
        total.energyUj += c.energyUj;
        total.dramAccesses += c.dramAccesses;
        total.l2Accesses += c.l2Accesses;
        total.l1Required = std::max(total.l1Required, c.l1Required);
        total.l2Required = std::max(total.l2Required, c.l2Required);
        total.buffersFit = total.buffersFit && c.buffersFit;
        total.areaMm2 = c.areaMm2;
    }
    total.throughputMacsPerCycle =
        total.runtimeCycles > 0.0 ? network.totalMacs() /
                                        total.runtimeCycles
                                  : 0.0;
    return total;
}

LayerView::LayerView(const ConvLayer &layer)
    : sizes(dimSizes(layer)), stride(layer.stride), macs(layer.macs()),
      baseDramWords(layer.weightCount() + layer.inputCount() +
                    2.0 * layer.outputCount())
{
}

NetworkView::NetworkView(const Network &network) : name_(network.name)
{
    layers_.reserve(network.layers.size());
    for (const ConvLayer &l : network.layers)
        layers_.emplace_back(l);
    totalMacs_ = network.totalMacs();
}

namespace {

/**
 * Everything evaluateMapping derives from the mapping alone — the
 * argsorted loop order and, per operand, the ordered list of loop
 * dimensions outside its reuse run (each flagged if it is the spatially
 * unrolled dimension of an operand it is irrelevant to, i.e. multicast:
 * the reload count multiplies by waves instead of trips). Deriving this
 * once per mapping replaces a stable_sort plus 3 x 2 order scans per
 * layer.
 */
struct MappingAnalysis
{
    struct Factor
    {
        std::size_t dim = 0;
        bool useWaves = false;
    };

    std::size_t spatial = 0;
    double pes = 1.0;
    std::array<std::array<Factor, kNumDims>, 3> factors{};
    std::array<std::size_t, 3> numFactors{};
    /** Requested tile sizes, floored at 1 (the per-layer clamp against
     *  the layer extents is all that remains per evaluation). */
    std::array<double, kNumDims> tileRaw{};
    double l2Cap = 0.0;    ///< hw L2 capacity in words
    double areaMm2 = 0.0;  ///< mapping-level constant

    MappingAnalysis(const Mapping &mapping, const MaestroHardware &hw)
        : spatial(static_cast<std::size_t>(mapping.spatialDim)),
          pes(std::max(1u, mapping.numPEs))
    {
        for (std::size_t i = 0; i < kNumDims; ++i) {
            tileRaw[i] = static_cast<double>(
                std::max(1u, mapping.tile[i]));
        }
        l2Cap = static_cast<double>(hw.l2KiloWords) * 1024.0;
        areaMm2 = pes * hw.peAreaMm2 +
                  pes * hw.l1Words * hw.l1AreaMm2PerWord +
                  hw.l2KiloWords * hw.l2AreaMm2PerKiloWord;
        const auto order = mapping.loopOrder();
        for (int op = 0; op < 3; ++op) {
            std::size_t innermostRelevant = kNumDims;  // none
            for (std::size_t pos = 0; pos < kNumDims; ++pos) {
                if (relevant(order[pos], op))
                    innermostRelevant = pos;
            }
            std::size_t n = 0;
            for (std::size_t pos = 0; pos < kNumDims; ++pos) {
                if (innermostRelevant == kNumDims ||
                    pos > innermostRelevant)
                    continue;  // inside the reuse run
                const auto d = static_cast<std::size_t>(order[pos]);
                factors[op][n++] = Factor{
                    d, d == spatial && !relevant(order[pos], op)};
            }
            numFactors[op] = n;
        }
    }
};

MappingCost
evaluateMappingImpl(const MappingAnalysis &an, const LayerView &view,
                    const MaestroHardware &hw)
{
    MappingCost cost;
    const auto &sizes = view.sizes;

    // Clamp tiles to the layer's actual extents.
    std::array<double, kNumDims> tile;
    std::array<double, kNumDims> trips;
    for (std::size_t i = 0; i < kNumDims; ++i) {
        tile[i] = std::min(an.tileRaw[i], sizes[i]);
        trips[i] = std::ceil(sizes[i] / tile[i]);
    }

    const double pes = an.pes;
    const std::size_t spatial = an.spatial;

    const double spatialTrips = trips[spatial];
    const double waves = std::ceil(spatialTrips / pes);
    const double activePes = std::min(pes, spatialTrips);

    const double tk = tile[0], tc = tile[1], tr = tile[2], ts = tile[3],
                 ty = tile[4], tx = tile[5];
    const double stride = view.stride;
    const double inTileH = (ty - 1.0) * stride + tr;
    const double inTileW = (tx - 1.0) * stride + ts;
    const std::array<double, 3> footprint = {
        tk * tc * tr * ts,        // weights
        tc * inTileH * inTileW,   // inputs
        tk * ty * tx,             // outputs (psums)
    };
    cost.l1Required = footprint[0] + footprint[1] + footprint[2];

    // L2 -> L1 traffic via the precomputed per-operand reuse factors;
    // multiplication order matches the reference's position scan.
    std::array<double, 3> loads = {1.0, 1.0, 1.0};
    for (int op = 0; op < 3; ++op) {
        for (std::size_t j = 0; j < an.numFactors[op]; ++j) {
            const MappingAnalysis::Factor &f = an.factors[op][j];
            loads[op] *= f.useWaves ? waves : trips[f.dim];
        }
    }
    const double l2Traffic = loads[0] * footprint[0] +
                             loads[1] * footprint[1] +
                             (2.0 * loads[2] - 1.0) * footprint[2];

    cost.l2Required = footprint[0] * activePes + footprint[1] * activePes +
                      footprint[2] * activePes;
    const double l2Cap = an.l2Cap;
    double spillFactor = 1.0;
    cost.buffersFit = true;
    if (cost.l1Required > hw.l1Words) {
        spillFactor *= cost.l1Required / hw.l1Words;
        cost.buffersFit = false;
    }
    if (cost.l2Required > l2Cap) {
        spillFactor *= cost.l2Required / l2Cap;
        cost.buffersFit = false;
    }
    const double dramTraffic = view.baseDramWords * spillFactor;

    const double macs = view.macs;
    double temporalTiles = 1.0;
    for (std::size_t i = 0; i < kNumDims; ++i)
        if (i != spatial)
            temporalTiles *= trips[i];
    const double tileMacs = tk * tc * tr * ts * ty * tx;
    const double computeCycles = temporalTiles * waves * tileMacs;
    const double nocCycles = l2Traffic / hw.nocWordsPerCycle;
    const double dramCycles = dramTraffic / hw.dramWordsPerCycle;
    cost.runtimeCycles =
        std::max({computeCycles, nocCycles, dramCycles, 1.0});
    cost.throughputMacsPerCycle = macs / cost.runtimeCycles;

    const double l1Accesses = 3.0 * macs;
    cost.dramAccesses = dramTraffic;
    cost.l2Accesses = l2Traffic;
    const double energyPj = dramTraffic * hw.dramPj + l2Traffic * hw.l2Pj +
                            l1Accesses * hw.l1Pj + macs * hw.macPj;
    cost.energyUj = energyPj / 1e6;

    cost.areaMm2 = an.areaMm2;
    return cost;
}

} // namespace

MappingCost
evaluateMapping(const Mapping &mapping, const LayerView &layer,
                const MaestroHardware &hw)
{
    return evaluateMappingImpl(MappingAnalysis(mapping, hw), layer, hw);
}

MappingCost
evaluateMappingOnNetwork(const Mapping &mapping, const NetworkView &network,
                         const MaestroHardware &hw)
{
    const MappingAnalysis analysis(mapping, hw);
    MappingCost total;
    total.buffersFit = true;
    for (const LayerView &layer : network.layers()) {
        // Cooperative run deadline, mirroring the reference path.
        resilience::checkpoint();
        const MappingCost c = evaluateMappingImpl(analysis, layer, hw);
        total.runtimeCycles += c.runtimeCycles;
        total.energyUj += c.energyUj;
        total.dramAccesses += c.dramAccesses;
        total.l2Accesses += c.l2Accesses;
        total.l1Required = std::max(total.l1Required, c.l1Required);
        total.l2Required = std::max(total.l2Required, c.l2Required);
        total.buffersFit = total.buffersFit && c.buffersFit;
        total.areaMm2 = c.areaMm2;
    }
    total.throughputMacsPerCycle =
        total.runtimeCycles > 0.0 ? network.totalMacs() /
                                        total.runtimeCycles
                                  : 0.0;
    return total;
}

} // namespace archgym::maestro
