/**
 * @file
 * Data-centric DNN mapping description (the MAESTRO stand-in's input).
 *
 * A mapping fixes, for the 6-dimensional conv loop nest (K, C, R, S, Y,
 * X), the per-dimension L1 tile sizes, the loop order, which dimension is
 * unrolled spatially across the PE array, and the PE count. The loop
 * order is encoded as one integer priority per dimension — the order is
 * the argsort of priorities — which gives population-based agents a
 * fixed-length genome and makes GAMMA's "reordering" operator (permuting
 * a genome subsegment) act exactly on the loop order.
 */

#ifndef ARCHGYM_MAESTRO_MAPPING_H
#define ARCHGYM_MAESTRO_MAPPING_H

#include <array>
#include <cstdint>
#include <string>

namespace archgym::maestro {

/** Conv loop-nest dimensions. */
enum class Dim : std::size_t { K = 0, C = 1, R = 2, S = 3, Y = 4, X = 5 };

constexpr std::size_t kNumDims = 6;

const char *toString(Dim d);

/** The MaestroGym design point. */
struct Mapping
{
    std::uint32_t numPEs = 256;
    Dim spatialDim = Dim::K;            ///< dimension unrolled across PEs
    std::array<std::uint32_t, kNumDims> tile = {16, 16, 3, 3, 4, 4};
    /** Loop-order priorities; lower value = outer loop. Ties break by
     *  dimension index, so any integer vector is a valid encoding. */
    std::array<std::uint32_t, kNumDims> priority = {0, 1, 2, 3, 4, 5};

    /** Dimensions ordered outermost to innermost. */
    std::array<Dim, kNumDims> loopOrder() const;

    std::string str() const;
};

} // namespace archgym::maestro

#endif // ARCHGYM_MAESTRO_MAPPING_H
