#include "mapping.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace archgym::maestro {

const char *
toString(Dim d)
{
    switch (d) {
      case Dim::K: return "K";
      case Dim::C: return "C";
      case Dim::R: return "R";
      case Dim::S: return "S";
      case Dim::Y: return "Y";
      case Dim::X: return "X";
    }
    return "?";
}

std::array<Dim, kNumDims>
Mapping::loopOrder() const
{
    std::array<std::size_t, kNumDims> idx;
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(),
                     [this](std::size_t a, std::size_t b) {
                         return priority[a] < priority[b];
                     });
    std::array<Dim, kNumDims> order;
    for (std::size_t i = 0; i < kNumDims; ++i)
        order[i] = static_cast<Dim>(idx[i]);
    return order;
}

std::string
Mapping::str() const
{
    std::ostringstream os;
    os << "pes=" << numPEs << " spatial=" << toString(spatialDim)
       << " tiles=[";
    for (std::size_t i = 0; i < kNumDims; ++i) {
        if (i)
            os << ",";
        os << toString(static_cast<Dim>(i)) << ":" << tile[i];
    }
    os << "] order=";
    for (Dim d : loopOrder())
        os << toString(d);
    return os.str();
}

} // namespace archgym::maestro
