#include "maestro_gym_env.h"

namespace archgym {

MaestroGymEnv::MaestroGymEnv(Options options)
    : options_(std::move(options)), view_(options_.network)
{
    space_.add(ParamDesc::powerOfTwo("NumPEs", 64, 1024))
        .add(ParamDesc::categorical("SpatialDim", {"K", "C", "Y", "X"}))
        .add(ParamDesc::powerOfTwo("TileK", 1, 64))
        .add(ParamDesc::powerOfTwo("TileC", 1, 64))
        .add(ParamDesc::powerOfTwo("TileY", 1, 32))
        .add(ParamDesc::powerOfTwo("TileX", 1, 32));
    // Loop-order priorities, one per conv dimension (argsort = order).
    for (std::size_t d = 0; d < maestro::kNumDims; ++d) {
        space_.add(ParamDesc::integer(
            std::string("Prio") +
                maestro::toString(static_cast<maestro::Dim>(d)),
            0, 5));
    }
    objective_ = std::make_unique<InverseObjective>(0, "runtime_cycles");
}

maestro::Mapping
MaestroGymEnv::decodeAction(const Action &action) const
{
    maestro::Mapping m;
    m.numPEs = static_cast<std::uint32_t>(action[0]);
    static const maestro::Dim spatialChoices[] = {
        maestro::Dim::K, maestro::Dim::C, maestro::Dim::Y,
        maestro::Dim::X};
    m.spatialDim = spatialChoices[space_.toLevels(action)[1]];
    m.tile[0] = static_cast<std::uint32_t>(action[2]);  // K
    m.tile[1] = static_cast<std::uint32_t>(action[3]);  // C
    m.tile[2] = 3;  // R: kernels are small; keep full tiles
    m.tile[3] = 3;  // S
    m.tile[4] = static_cast<std::uint32_t>(action[4]);  // Y
    m.tile[5] = static_cast<std::uint32_t>(action[5]);  // X
    for (std::size_t d = 0; d < maestro::kNumDims; ++d)
        m.priority[d] = static_cast<std::uint32_t>(action[6 + d]);
    return m;
}

StepResult
MaestroGymEnv::evaluate(const Action &action) const
{
    const maestro::MappingCost cost = maestro::evaluateMappingOnNetwork(
        decodeAction(action), view_, options_.hardware);
    StepResult sr;
    double runtime = cost.runtimeCycles;
    if (!cost.buffersFit)
        runtime *= options_.infeasiblePenalty;
    sr.observation = {runtime, cost.throughputMacsPerCycle, cost.energyUj,
                      cost.areaMm2};
    sr.reward = objective_->reward(sr.observation);
    sr.done = false;
    return sr;
}

StepResult
MaestroGymEnv::step(const Action &action)
{
    recordSample();
    return evaluate(action);
}

std::vector<StepResult>
MaestroGymEnv::stepBatch(const std::vector<Action> &actions)
{
    std::vector<StepResult> results(actions.size());
    const bool parallel = parallelEvalBatch(
        actions.size(), [&](std::size_t, std::size_t i) {
            results[i] = evaluate(actions[i]);
        });
    if (!parallel)
        return Environment::stepBatch(actions);
    recordSamples(actions.size());
    return results;
}

} // namespace archgym
