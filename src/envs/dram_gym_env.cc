#include "dram_gym_env.h"

namespace archgym {

const char *
toString(DramObjective o)
{
    switch (o) {
      case DramObjective::LowPower: return "low-power";
      case DramObjective::LowLatency: return "low-latency";
      case DramObjective::LatencyAndPower: return "latency+power";
    }
    return "?";
}

DramGymEnv::DramGymEnv(Options options)
    : options_(std::move(options)),
      controller_(options_.spec, dram::ControllerConfig{})
{
    buildSpace();
    buildObjective();
    traceSpec_ = options_.trace;
    if (traceSpec_.source.empty()) {
        // Legacy field resolution: pattern/traceLength/traceSeed keep
        // producing byte-identical traces to the pre-TraceSpec ctor.
        traceSpec_.source = dram::toString(options_.pattern);
        traceSpec_.numRequests = options_.traceLength;
        traceSpec_.seed = options_.traceSeed;
    }
    traceFactory_ = std::make_unique<dram::TraceSourceFactory>(traceSpec_);
    if (!traceSpec_.streamed) {
        const auto source = traceFactory_->make();
        trace_ = dram::materialize(*source, traceSpec_.numRequests);
        decoded_.assign(options_.spec, trace_);
    }
}

void
DramGymEnv::buildSpace()
{
    space_.add(ParamDesc::categorical(
                   "PagePolicy", {"Open", "OpenAdaptive", "Closed",
                                  "ClosedAdaptive"}))
        .add(ParamDesc::categorical("Scheduler",
                                    {"Fifo", "FrFcFs", "FrFcFsGrp"}))
        .add(ParamDesc::categorical("SchedulerBuffer",
                                    {"Bankwise", "ReadWrite", "Shared"}))
        .add(ParamDesc::integer("RequestBufferSize", 1, 8))
        .add(ParamDesc::categorical("RespQueue", {"Fifo", "Reorder"}))
        .add(ParamDesc::integer("RefreshMaxPostponed", 1, 8))
        .add(ParamDesc::integer("RefreshMaxPulledin", 1, 8))
        .add(ParamDesc::categorical("Arbiter",
                                    {"Simple", "Fifo", "Reorder"}))
        .add(ParamDesc::powerOfTwo("MaxActiveTransactions", 1, 128));
}

void
DramGymEnv::buildObjective()
{
    std::vector<TargetTerm> terms;
    if (options_.objective == DramObjective::LowLatency ||
        options_.objective == DramObjective::LatencyAndPower) {
        terms.push_back(TargetTerm{0, options_.latencyTargetNs, 1.0,
                                   "latency_ns"});
    }
    if (options_.objective == DramObjective::LowPower ||
        options_.objective == DramObjective::LatencyAndPower) {
        terms.push_back(TargetTerm{1, options_.powerTargetW, 1.0,
                                   "power_w"});
    }
    objective_ = std::make_unique<TargetObjective>(std::move(terms));
}

dram::ControllerConfig
DramGymEnv::decodeAction(const Action &action) const
{
    const auto levels = space_.toLevels(action);
    dram::ControllerConfig cfg;
    cfg.pagePolicy = static_cast<dram::PagePolicy>(levels[0]);
    cfg.scheduler = static_cast<dram::SchedulerPolicy>(levels[1]);
    cfg.schedulerBuffer = static_cast<dram::BufferOrg>(levels[2]);
    cfg.requestBufferSize = static_cast<std::uint32_t>(action[3]);
    cfg.respQueue = static_cast<dram::RespQueuePolicy>(levels[4]);
    cfg.refreshMaxPostponed = static_cast<std::uint32_t>(action[5]);
    cfg.refreshMaxPulledin = static_cast<std::uint32_t>(action[6]);
    cfg.arbiter = static_cast<dram::ArbiterPolicy>(levels[7]);
    cfg.maxActiveTransactions = static_cast<std::uint32_t>(action[8]);
    return cfg;
}

dram::SimResult
DramGymEnv::simulate(const Action &action)
{
    controller_.setConfig(decodeAction(action));
    if (traceSpec_.streamed) {
        const auto source = traceFactory_->make();
        return dram::runStreamed(controller_, options_.spec, *source,
                                 traceSpec_.numRequests,
                                 traceSpec_.chunkRequests);
    }
    return controller_.run(decoded_);
}

StepResult
DramGymEnv::evaluate(dram::DramController &controller,
                     const Action &action) const
{
    controller.setConfig(decodeAction(action));
    dram::SimResult sim;
    if (traceSpec_.streamed) {
        // Fresh source per evaluation: the stream is deterministic, so
        // every step (and every stepBatch worker slot) sees the exact
        // same workload while memory stays bounded by one chunk.
        const auto source = traceFactory_->make();
        sim = dram::runStreamed(controller, options_.spec, *source,
                                traceSpec_.numRequests,
                                traceSpec_.chunkRequests);
    } else {
        sim = controller.run(decoded_);
    }
    StepResult sr;
    sr.observation = {sim.avgLatencyNs, sim.power.avgPowerW,
                      sim.totalEnergyPj() / 1e6};
    sr.reward = objective_->reward(sr.observation);
    sr.done = objective_->satisfied(sr.observation);
    return sr;
}

StepResult
DramGymEnv::step(const Action &action)
{
    recordSample();
    return evaluate(controller_, action);
}

std::vector<StepResult>
DramGymEnv::stepBatch(const std::vector<Action> &actions)
{
    std::vector<StepResult> results(actions.size());
    const bool parallel = parallelEvalBatch(
        actions.size(),
        [&](std::size_t slot, std::size_t i) {
            auto &controller = slotControllers_[slot];
            if (!controller) {
                controller = std::make_unique<dram::DramController>(
                    options_.spec, dram::ControllerConfig{});
            }
            results[i] = evaluate(*controller, actions[i]);
        },
        [&](std::size_t slots) {
            if (slotControllers_.size() < slots)
                slotControllers_.resize(slots);
        });
    if (!parallel)
        return Environment::stepBatch(actions);
    recordSamples(actions.size());
    return results;
}

} // namespace archgym
