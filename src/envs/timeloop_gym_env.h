/**
 * @file
 * TimeloopGym: DNN-accelerator datapath DSE (paper Table 3, Fig 3b).
 *
 * Wraps the analytical accelerator cost model plus one CNN workload. The
 * action space tunes the Eyeriss-style datapath resources; observation is
 * <latency, energy, area>; the reward is the Table 3 target form over a
 * configurable subset of the three metrics.
 */

#ifndef ARCHGYM_ENVS_TIMELOOP_GYM_ENV_H
#define ARCHGYM_ENVS_TIMELOOP_GYM_ENV_H

#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/objective.h"
#include "timeloop/cost_model.h"

namespace archgym {

class TimeloopGymEnv : public Environment
{
  public:
    struct Options
    {
        timeloop::Network network = timeloop::resNet50();
        double latencyTargetMs = 5.0;
        double energyTargetUj = 0.0;  ///< 0 = not part of the objective
        double areaTargetMm2 = 0.0;   ///< 0 = not part of the objective
    };

    TimeloopGymEnv() : TimeloopGymEnv(Options{}) {}
    explicit TimeloopGymEnv(Options options);

    const std::string &name() const override { return name_; }
    const ParamSpace &actionSpace() const override { return space_; }
    const std::vector<std::string> &metricNames() const override
    {
        return metricNames_;
    }
    StepResult step(const Action &action) override;
    /** Parallel fan-out over the shared worker pool; the mapper runs
     *  per action against the immutable view_, so no per-slot mutable
     *  state is needed. */
    std::vector<StepResult>
    stepBatch(const std::vector<Action> &actions) override;

    timeloop::AcceleratorConfig decodeAction(const Action &action) const;
    const Objective &objective() const { return *objective_; }

  private:
    /** The single per-action evaluation shared by step() and the
     *  stepBatch worker body (stateless given the shared view). */
    StepResult evaluate(const Action &action) const;

    std::string name_ = "TimeloopGym";
    std::vector<std::string> metricNames_{"latency_ms", "energy_uj",
                                          "area_mm2"};
    Options options_;
    ParamSpace space_;
    std::unique_ptr<Objective> objective_;
    /** Decoded-once workload view (per-layer tile candidates and loop
     *  bounds): step() re-derives nothing about the network. */
    timeloop::NetworkView view_;
};

} // namespace archgym

#endif // ARCHGYM_ENVS_TIMELOOP_GYM_ENV_H
