#include "timeloop_gym_env.h"

namespace archgym {

TimeloopGymEnv::TimeloopGymEnv(Options options)
    : options_(std::move(options)), view_(options_.network)
{
    space_.add(ParamDesc::powerOfTwo("NumPEs", 16, 1024))
        .add(ParamDesc::powerOfTwo("WeightsSPad_Entries", 16, 512))
        .add(ParamDesc::powerOfTwo("InputSPad_Entries", 4, 64))
        .add(ParamDesc::powerOfTwo("AccumSPad_Entries", 4, 64))
        .add(ParamDesc::powerOfTwo("GlobalBuffer_KB", 32, 512))
        .add(ParamDesc::powerOfTwo("NoC_WordsPerCycle", 1, 16))
        .add(ParamDesc::powerOfTwo("DRAM_WordsPerCycle", 1, 8));

    std::vector<TargetTerm> terms;
    terms.push_back(TargetTerm{0, options_.latencyTargetMs, 1.0,
                               "latency_ms"});
    if (options_.energyTargetUj > 0.0) {
        terms.push_back(TargetTerm{1, options_.energyTargetUj, 1.0,
                                   "energy_uj"});
    }
    if (options_.areaTargetMm2 > 0.0) {
        terms.push_back(TargetTerm{2, options_.areaTargetMm2, 1.0,
                                   "area_mm2"});
    }
    objective_ = std::make_unique<TargetObjective>(std::move(terms));
}

timeloop::AcceleratorConfig
TimeloopGymEnv::decodeAction(const Action &action) const
{
    timeloop::AcceleratorConfig cfg;
    cfg.numPEs = static_cast<std::uint32_t>(action[0]);
    cfg.weightSpadEntries = static_cast<std::uint32_t>(action[1]);
    cfg.inputSpadEntries = static_cast<std::uint32_t>(action[2]);
    cfg.accumSpadEntries = static_cast<std::uint32_t>(action[3]);
    cfg.globalBufferKb = static_cast<std::uint32_t>(action[4]);
    cfg.nocWordsPerCycle = static_cast<std::uint32_t>(action[5]);
    cfg.dramWordsPerCycle = static_cast<std::uint32_t>(action[6]);
    return cfg;
}

StepResult
TimeloopGymEnv::evaluate(const Action &action) const
{
    const timeloop::LayerCost cost =
        timeloop::evaluateNetwork(decodeAction(action), view_);
    StepResult sr;
    sr.observation = {cost.latencyMs, cost.energyUj, cost.areaMm2};
    sr.reward = objective_->reward(sr.observation);
    sr.done = objective_->satisfied(sr.observation);
    return sr;
}

StepResult
TimeloopGymEnv::step(const Action &action)
{
    recordSample();
    return evaluate(action);
}

std::vector<StepResult>
TimeloopGymEnv::stepBatch(const std::vector<Action> &actions)
{
    std::vector<StepResult> results(actions.size());
    const bool parallel = parallelEvalBatch(
        actions.size(), [&](std::size_t, std::size_t i) {
            results[i] = evaluate(actions[i]);
        });
    if (!parallel)
        return Environment::stepBatch(actions);
    recordSamples(actions.size());
    return results;
}

} // namespace archgym
