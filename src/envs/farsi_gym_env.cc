#include "farsi_gym_env.h"
#include <algorithm>

namespace archgym {

FarsiGymEnv::FarsiGymEnv(Options options)
    : options_(std::move(options)), view_(options_.graph)
{
    space_.add(ParamDesc::integer("LittleCores", 0, 4))
        .add(ParamDesc::integer("BigCores", 0, 4))
        .add(ParamDesc::integer("DspAccels", 0, 4))
        .add(ParamDesc::integer("ImageAccels", 0, 4))
        .add(ParamDesc::real("FrequencyGhz", 0.4, 2.0, 0.2))
        .add(ParamDesc::powerOfTwo("NoC_BusWidth", 32, 512))
        .add(ParamDesc::real("BusFrequencyGhz", 0.4, 2.0, 0.2))
        .add(ParamDesc::powerOfTwo("MemoryBandwidthGBps", 2, 32));

    objective_ = std::make_unique<BudgetDistanceObjective>(
        std::vector<BudgetTerm>{
            BudgetTerm{0, options_.powerBudgetW, 1.0, "power_w"},
            BudgetTerm{1, options_.latencyBudgetMs, 1.0, "latency_ms"},
            BudgetTerm{2, options_.areaBudgetMm2, 1.0, "area_mm2"},
        });
}

farsi::SocConfig
FarsiGymEnv::decodeAction(const Action &action) const
{
    farsi::SocConfig cfg;
    cfg.littleCores = static_cast<std::uint32_t>(action[0]);
    cfg.bigCores = static_cast<std::uint32_t>(action[1]);
    cfg.dspAccels = static_cast<std::uint32_t>(action[2]);
    cfg.imageAccels = static_cast<std::uint32_t>(action[3]);
    cfg.frequencyGhz = action[4];
    cfg.busWidthBits = static_cast<std::uint32_t>(action[5]);
    cfg.busFrequencyGhz = action[6];
    cfg.memoryBandwidthGBps = action[7];
    return cfg;
}

StepResult
FarsiGymEnv::evaluate(const Action &action,
                      farsi::SocEvalScratch &scratch,
                      farsi::SocResult &sim) const
{
    farsi::evaluateSoc(decodeAction(action), view_, scratch, sim);
    StepResult sr;
    sr.observation = {sim.powerW, sim.latencyMs, sim.areaMm2};
    sr.reward = std::max(objective_->reward(sr.observation),
                         -options_.rewardFloor);
    sr.done = objective_->satisfied(sr.observation);
    return sr;
}

StepResult
FarsiGymEnv::step(const Action &action)
{
    recordSample();
    return evaluate(action, scratch_, sim_);
}

std::vector<StepResult>
FarsiGymEnv::stepBatch(const std::vector<Action> &actions)
{
    std::vector<StepResult> results(actions.size());
    const bool parallel = parallelEvalBatch(
        actions.size(),
        [&](std::size_t slot, std::size_t i) {
            SlotState &state = slotStates_[slot];
            results[i] = evaluate(actions[i], state.scratch, state.sim);
        },
        [&](std::size_t slots) {
            if (slotStates_.size() < slots)
                slotStates_.resize(slots);
        });
    if (!parallel)
        return Environment::stepBatch(actions);
    recordSamples(actions.size());
    return results;
}

} // namespace archgym
