/**
 * @file
 * FARSIGym: domain-specific SoC DSE for AR/VR workloads (paper Table 3,
 * Fig 3c).
 *
 * Wraps the task-graph SoC simulator. The action space allocates PEs
 * (little/big cores, DSP and image accelerators), clocks, bus width and
 * memory bandwidth; the observation is <power, performance, area>; the
 * reward is the negative distance-to-budget of Table 3.
 */

#ifndef ARCHGYM_ENVS_FARSI_GYM_ENV_H
#define ARCHGYM_ENVS_FARSI_GYM_ENV_H

#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/objective.h"
#include "farsi/scheduler.h"

namespace archgym {

class FarsiGymEnv : public Environment
{
  public:
    struct Options
    {
        farsi::TaskGraph graph = farsi::edgeDetection();
        double latencyBudgetMs = 6.0;
        double powerBudgetW = 0.35;
        double areaBudgetMm2 = 8.0;
        /** Rewards are clamped below at -rewardFloor so infeasible
         *  allocations (e.g. zero cores) don't produce unbounded
         *  negative outliers in aggregate statistics. */
        double rewardFloor = 1000.0;
    };

    FarsiGymEnv() : FarsiGymEnv(Options{}) {}
    explicit FarsiGymEnv(Options options);

    const std::string &name() const override { return name_; }
    const ParamSpace &actionSpace() const override { return space_; }
    const std::vector<std::string> &metricNames() const override
    {
        return metricNames_;
    }
    StepResult step(const Action &action) override;
    std::vector<StepResult>
    stepBatch(const std::vector<Action> &actions) override;

    farsi::SocConfig decodeAction(const Action &action) const;
    const BudgetDistanceObjective &objective() const { return *objective_; }

  private:
    /** The single per-action evaluation shared by step() and the
     *  stepBatch worker body: schedule onto the shared view with the
     *  given scratch/result buffers, score the observation. */
    StepResult evaluate(const Action &action,
                        farsi::SocEvalScratch &scratch,
                        farsi::SocResult &sim) const;

    std::string name_ = "FARSIGym";
    std::vector<std::string> metricNames_{"power_w", "latency_ms",
                                          "area_mm2"};
    Options options_;
    ParamSpace space_;
    std::unique_ptr<BudgetDistanceObjective> objective_;
    /** Decoded-once workload view plus reusable evaluation buffers:
     *  step() performs no per-step allocation or graph re-derivation. */
    farsi::TaskGraphView view_;
    farsi::SocEvalScratch scratch_;
    farsi::SocResult sim_;
    /** Per-slot evaluation buffers for stepBatch: every slot schedules
     *  against the shared immutable view_ with its own scratch/result,
     *  reset by reuse across batches. */
    struct SlotState
    {
        farsi::SocEvalScratch scratch;
        farsi::SocResult sim;
    };
    std::vector<SlotState> slotStates_;
};

} // namespace archgym

#endif // ARCHGYM_ENVS_FARSI_GYM_ENV_H
