/**
 * @file
 * DRAMGym: the memory-controller DSE environment (paper Table 3, Fig 3a).
 *
 * Wraps the DRAM subsystem simulator plus one memory trace. The action
 * space holds the nine controller parameters; the observation is
 * <latency, power, energy>; the reward follows the Table 3 target form
 * r = X_target / |X_target - X_obs| for the selected objective (low
 * power, low latency, or the joint combination).
 *
 * Zero-copy evaluation invariant: the trace is generated and decoded
 * exactly once, in the constructor. Every step() reconfigures a single
 * persistent DramController (setConfig) and runs it against the shared
 * immutable DecodedTrace — no trace copies, no controller
 * reconstruction, and (after the first step) no queue allocations.
 *
 * Streamed mode (Options::trace.streamed): instead of materializing the
 * trace, each evaluation pulls a fresh deterministic stream from a
 * TraceSourceFactory and runs it through the controller in bounded
 * chunks (dram::runStreamed) — memory stays flat at any trace length,
 * so 100x-longer workloads cost no extra resident bytes. The factory
 * resolves the trace source once (sd: CDF files are read at
 * construction); streams are identical across steps and worker slots.
 *
 * stepBatch() fans the same evaluation out over the shared worker
 * pool: the decoded trace, parameter space, and objective are shared
 * read-only, and each worker slot owns one lazily-built persistent
 * DramController that stays warm across batches.
 */

#ifndef ARCHGYM_ENVS_DRAM_GYM_ENV_H
#define ARCHGYM_ENVS_DRAM_GYM_ENV_H

#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/objective.h"
#include "dramsys/controller.h"
#include "dramsys/trace_gen.h"
#include "dramsys/trace_profile.h"

namespace archgym {

/** Optimization objectives mirroring Fig. 4's three columns. */
enum class DramObjective { LowPower, LowLatency, LatencyAndPower };

const char *toString(DramObjective o);

class DramGymEnv : public Environment
{
  public:
    struct Options
    {
        dram::TracePattern pattern = dram::TracePattern::Streaming;
        std::size_t traceLength = 512;
        std::uint64_t traceSeed = 7;
        DramObjective objective = DramObjective::LowPower;
        double powerTargetW = 1.0;     ///< §6.3 design goal
        double latencyTargetNs = 30.0;
        dram::MemSpec spec = {};
        /** Full trace workload spec. When trace.source is empty, the
         *  legacy pattern/traceLength/traceSeed fields above fill it in
         *  (byte-identical behavior); set it to use "sd:<cdf.json>" /
         *  "emb" sources or streamed chunk-pull evaluation. */
        dram::TraceSpec trace = {.source = ""};
    };

    DramGymEnv() : DramGymEnv(Options{}) {}
    explicit DramGymEnv(Options options);

    const std::string &name() const override { return name_; }
    const ParamSpace &actionSpace() const override { return space_; }
    const std::vector<std::string> &metricNames() const override
    {
        return metricNames_;
    }
    StepResult step(const Action &action) override;
    std::vector<StepResult>
    stepBatch(const std::vector<Action> &actions) override;

    /** Translate an action into a simulator configuration (for tests and
     *  for rendering Table 4 rows). */
    dram::ControllerConfig decodeAction(const Action &action) const;

    /** Run the underlying simulator directly (proxy-model ground truth). */
    dram::SimResult simulate(const Action &action);

    const Options &options() const { return options_; }
    const Objective &objective() const { return *objective_; }
    /** The trace spec after legacy-field resolution. */
    const dram::TraceSpec &traceSpec() const { return traceSpec_; }
    /** The raw generated trace (serialization, inspection). Empty in
     *  streamed mode — nothing is materialized there. */
    const std::vector<dram::MemoryRequest> &trace() const
    {
        return trace_;
    }

  private:
    void buildSpace();
    void buildObjective();
    /** The single per-action evaluation shared by step() and the
     *  stepBatch worker body: reconfigure `controller`, run it against
     *  the shared decoded trace, score the observation. */
    StepResult evaluate(dram::DramController &controller,
                        const Action &action) const;

    std::string name_ = "DRAMGym";
    std::vector<std::string> metricNames_{"latency_ns", "power_w",
                                          "energy_uj"};
    Options options_;
    ParamSpace space_;
    std::unique_ptr<Objective> objective_;
    dram::TraceSpec traceSpec_;  ///< options_.trace with legacy defaults
    /** Resolved trace-source factory; in streamed mode every evaluation
     *  pulls a fresh (identical) stream from it. */
    std::unique_ptr<dram::TraceSourceFactory> traceFactory_;
    std::vector<dram::MemoryRequest> trace_;
    dram::DecodedTrace decoded_;      ///< decoded once, shared by steps
    dram::DramController controller_; ///< reused across steps
    /** Per-slot persistent controllers for stepBatch, built lazily on a
     *  slot's first batch item and reused across batches. They share
     *  the immutable decoded_ trace; all mutable run state is private
     *  to the slot. */
    std::vector<std::unique_ptr<dram::DramController>> slotControllers_;
};

} // namespace archgym

#endif // ARCHGYM_ENVS_DRAM_GYM_ENV_H
