/**
 * @file
 * MaestroGym: DNN mapping search (paper Table 3, Fig 3d).
 *
 * Wraps the data-centric mapping cost model. The action space encodes a
 * full mapping — PE count, spatial dimension, per-dimension tile sizes,
 * and loop-order priorities. Observation is <runtime, throughput, energy,
 * area>; reward is the Table 3 inverse form r = 1 / runtime, so
 * minimizing latency maximizes reward (Fig. 6's comparison metric).
 */

#ifndef ARCHGYM_ENVS_MAESTRO_GYM_ENV_H
#define ARCHGYM_ENVS_MAESTRO_GYM_ENV_H

#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/objective.h"
#include "maestro/cost_model.h"

namespace archgym {

class MaestroGymEnv : public Environment
{
  public:
    struct Options
    {
        timeloop::Network network = timeloop::resNet18();
        maestro::MaestroHardware hardware = {};
        /** Penalize mappings whose tiles overflow the buffers. */
        double infeasiblePenalty = 4.0;
    };

    MaestroGymEnv() : MaestroGymEnv(Options{}) {}
    explicit MaestroGymEnv(Options options);

    const std::string &name() const override { return name_; }
    const ParamSpace &actionSpace() const override { return space_; }
    const std::vector<std::string> &metricNames() const override
    {
        return metricNames_;
    }
    StepResult step(const Action &action) override;
    /** Parallel fan-out over the shared worker pool; the data-centric
     *  cost model derives only mapping-local state per action against
     *  the immutable view_, so no per-slot mutable state is needed. */
    std::vector<StepResult>
    stepBatch(const std::vector<Action> &actions) override;

    maestro::Mapping decodeAction(const Action &action) const;

  private:
    /** The single per-action evaluation shared by step() and the
     *  stepBatch worker body (stateless given the shared view). */
    StepResult evaluate(const Action &action) const;

    std::string name_ = "MaestroGym";
    std::vector<std::string> metricNames_{"runtime_cycles",
                                          "throughput_macs_per_cycle",
                                          "energy_uj", "area_mm2"};
    Options options_;
    ParamSpace space_;
    std::unique_ptr<Objective> objective_;
    /** Decoded-once workload view (clamp extents, operand counts):
     *  step() derives only mapping-dependent state. */
    maestro::NetworkView view_;
};

} // namespace archgym

#endif // ARCHGYM_ENVS_MAESTRO_GYM_ENV_H
