/**
 * @file
 * Extending ArchGym with a user-defined environment (paper §8 and Fig. 1:
 * replace 'ArchitectureFoo' with your cost model).
 *
 * The example wraps a small analytical L1-cache model — average memory
 * access time (AMAT) and silicon area as functions of sets, ways, line
 * size and replacement policy — into the Environment interface, then
 * runs two unmodified agents (including the post-paper SA integration)
 * against it. No framework changes are required: implementing
 * actionSpace(), metricNames() and step() is the whole contract.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "core/driver.h"
#include "core/environment.h"
#include "core/objective.h"

namespace {

using namespace archgym;

/** Analytical L1 data-cache model wrapped as an ArchGym environment. */
class CacheGymEnv : public Environment
{
  public:
    CacheGymEnv()
    {
        space_.add(ParamDesc::powerOfTwo("Sets", 16, 1024))
            .add(ParamDesc::powerOfTwo("Ways", 1, 16))
            .add(ParamDesc::powerOfTwo("LineBytes", 16, 128))
            .add(ParamDesc::categorical("Replacement",
                                        {"LRU", "Random", "FIFO"}));
        objective_ = std::make_unique<TargetObjective>(
            std::vector<TargetTerm>{{0, 1.6, 1.0, "amat_ns"}});
    }

    const std::string &name() const override { return name_; }
    const ParamSpace &actionSpace() const override { return space_; }
    const std::vector<std::string> &metricNames() const override
    {
        return metricNames_;
    }

    StepResult step(const Action &action) override
    {
        recordSample();
        const double sets = action[0];
        const double ways = action[1];
        const double line = action[2];
        const std::size_t repl = space_.toLevels(action)[3];

        const double sizeKb = sets * ways * line / 1024.0;
        // Miss rate: power law in capacity, penalties for low
        // associativity (conflicts) and large lines (pollution).
        double missRate = 0.12 * std::pow(sizeKb / 4.0, -0.45);
        missRate *= 1.0 + 0.35 / ways;
        missRate *= 1.0 + 0.002 * line;
        // Replacement policy quality factor.
        const double replFactor[] = {1.0, 1.18, 1.10};
        missRate *= replFactor[repl];

        // Hit time grows with capacity and associativity (tag compare).
        const double hitNs =
            0.45 + 0.08 * std::log2(sizeKb) + 0.05 * std::log2(ways);
        const double missNs = 14.0 + line / 32.0;  // refill time
        const double amat = hitNs + missRate * missNs;
        const double areaMm2 = 0.02 + 0.011 * sizeKb +
                               0.002 * ways +
                               (repl == 0 ? 0.01 : 0.0);

        StepResult sr;
        sr.observation = {amat, missRate, areaMm2};
        sr.reward = objective_->reward(sr.observation);
        sr.done = objective_->satisfied(sr.observation);
        return sr;
    }

  private:
    std::string name_ = "CacheGym";
    std::vector<std::string> metricNames_{"amat_ns", "miss_rate",
                                          "area_mm2"};
    ParamSpace space_;
    std::unique_ptr<Objective> objective_;
};

} // namespace

int
main()
{
    CacheGymEnv env;
    std::printf("Custom environment '%s': %zu parameters, %.0f design "
                "points\n",
                env.name().c_str(), env.actionSpace().size(),
                env.actionSpace().cardinality());

    // Any registered agent works unmodified — including SA, which was
    // integrated after the five paper agents (see agents/registry.cc).
    for (const std::string agentName : {"BO", "SA"}) {
        CacheGymEnv searchEnv;
        archgym::HyperParams hp;
        if (agentName == "BO")
            hp.set("num_candidates", 64).set("max_history", 64);
        auto agent = archgym::makeAgent(
            agentName, searchEnv.actionSpace(), hp, 5);
        archgym::RunConfig cfg;
        cfg.maxSamples = 300;
        const archgym::RunResult r =
            archgym::runSearch(searchEnv, *agent, cfg);
        std::printf("\n%s best design (reward %.2f):\n  %s\n",
                    agentName.c_str(), r.bestReward,
                    searchEnv.actionSpace()
                        .describe(r.bestAction)
                        .c_str());
        std::printf("  AMAT %.3f ns | miss rate %.3f | area %.3f mm2\n",
                    r.bestMetrics[0], r.bestMetrics[1], r.bestMetrics[2]);
    }
    return 0;
}
