/**
 * @file
 * The §7 dataset-aggregation workflow: log trajectories from several
 * agents through the standardized interface, merge them into an ArchGym
 * dataset, train a random-forest proxy cost model, and report its
 * accuracy and speedup over the simulator — plus a CSV export showing
 * the standardized trajectory format.
 */

#include <chrono>
#include <cstdio>
#include <sstream>

#include "agents/registry.h"
#include "core/driver.h"
#include "envs/dram_gym_env.h"
#include "proxy/proxy_model.h"

int
main()
{
    using namespace archgym;

    DramGymEnv::Options options;
    options.pattern = dram::TracePattern::Cloud1;
    options.traceLength = 192;
    DramGymEnv env(options);

    // 1. Collect exploration trajectories from four agents.
    Dataset dataset;
    for (const std::string agentName : {"ACO", "GA", "RW", "BO"}) {
        HyperParams hp;
        if (agentName == "BO")
            hp.set("num_candidates", 48).set("max_history", 64);
        auto agent = makeAgent(agentName, env.actionSpace(), hp, 99);
        RunConfig cfg;
        cfg.maxSamples = 300;
        cfg.logTrajectory = true;
        RunResult r = runSearch(env, *agent, cfg);
        std::printf("collected %zu transitions from %s\n",
                    r.trajectory.size(), agentName.c_str());
        dataset.add(std::move(r.trajectory));
    }
    std::printf("dataset: %zu transitions from %zu agents\n\n",
                dataset.transitionCount(), dataset.agentNames().size());

    // Show a slice of the standardized CSV format.
    std::ostringstream csv;
    dataset.log(0).writeCsv(csv, env.actionSpace(), env.metricNames());
    const std::string text = csv.str();
    std::printf("trajectory CSV preview:\n%.*s...\n\n",
                static_cast<int>(std::min<std::size_t>(400, text.size())),
                text.c_str());

    // 2. Train one random forest per metric on the merged dataset.
    ProxyCostModel proxy(env.actionSpace(), env.metricNames());
    proxy.train(dataset.flatten());

    // 3. Held-out accuracy.
    Rng rng(123);
    std::vector<Transition> test;
    for (int i = 0; i < 150; ++i) {
        Transition t;
        t.action = env.actionSpace().sample(rng);
        const StepResult sr = env.step(t.action);
        t.observation = sr.observation;
        test.push_back(std::move(t));
    }
    const ProxyAccuracy acc = proxy.evaluate(test);
    for (std::size_t m = 0; m < acc.metricNames.size(); ++m) {
        std::printf("%-10s rmse %-10.4g (%.2f%% relative)  "
                    "correlation %.3f\n",
                    acc.metricNames[m].c_str(), acc.rmse[m],
                    acc.relativeRmse[m] * 100.0, acc.correlation[m]);
    }

    // 4. Speedup.
    const Action probe = env.actionSpace().sample(rng);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 200; ++i)
        env.simulate(probe);
    const auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < 200; ++i)
        proxy.predict(probe);
    const auto t2 = std::chrono::steady_clock::now();
    const double simUs =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / 200;
    const double proxyUs =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / 200;
    std::printf("\nsimulator %.1f us/eval, proxy %.2f us/eval -> "
                "%.0fx speedup\n",
                simUs, proxyUs, simUs / proxyUs);
    return 0;
}
