/**
 * @file
 * ArchGym quickstart: search a DRAM memory controller design with a
 * genetic algorithm.
 *
 * Demonstrates the three-step ArchGym workflow:
 *   1. construct an environment (cost model + workload + objective),
 *   2. construct an agent (policy + hyperparameters),
 *   3. run the standardized search loop and inspect the result.
 */

#include <cstdio>

#include "agents/genetic_algorithm.h"
#include "core/driver.h"
#include "envs/dram_gym_env.h"

int
main()
{
    using namespace archgym;

    // 1. Environment: DRAMGym with a streaming trace, optimizing the
    //    controller toward a 1 W power envelope.
    DramGymEnv::Options options;
    options.pattern = dram::TracePattern::Streaming;
    options.objective = DramObjective::LowPower;
    options.powerTargetW = 1.0;
    options.traceLength = 256;
    DramGymEnv env(options);

    std::printf("Environment: %s\n", env.name().c_str());
    std::printf("  design space : %.3g points\n",
                env.actionSpace().cardinality());
    std::printf("  objective    : %s\n", env.objective().describe().c_str());

    // 2. Agent: a genetic algorithm with explicit hyperparameters (Q3).
    HyperParams hp;
    hp.set("population_size", 16).set("mutation_prob", 0.1);
    GeneticAlgorithmAgent agent(env.actionSpace(), hp, /*seed=*/42);

    // 3. Search under a simulator sample budget.
    RunConfig config;
    config.maxSamples = 600;
    const RunResult result = runSearch(env, agent, config);

    std::printf("\nAfter %zu simulator samples (%.2f s):\n",
                result.samplesUsed, result.wallSeconds);
    std::printf("  best reward  : %.4f (found at sample %zu)\n",
                result.bestReward, result.bestSampleIndex);
    std::printf("  best design  : %s\n",
                env.actionSpace().describe(result.bestAction).c_str());
    std::printf("  metrics      : latency=%.1f ns power=%.3f W "
                "energy=%.1f uJ\n",
                result.bestMetrics[0], result.bestMetrics[1],
                result.bestMetrics[2]);
    return 0;
}
