/**
 * @file
 * AR/VR SoC design with FARSIGym: allocate cores, accelerators, bus and
 * memory for the edge-detection pipeline under power/performance/area
 * budgets, comparing two agents on the same budgeted objective.
 */

#include <cstdio>

#include "agents/registry.h"
#include "core/driver.h"
#include "envs/farsi_gym_env.h"

int
main()
{
    using namespace archgym;

    FarsiGymEnv::Options options;
    options.graph = farsi::edgeDetection();
    FarsiGymEnv env(options);

    std::printf("Designing an SoC for '%s'\n", options.graph.name.c_str());
    std::printf("  budgets: latency %.1f ms, power %.2f W, area %.1f mm2\n",
                options.latencyBudgetMs, options.powerBudgetW,
                options.areaBudgetMm2);
    std::printf("  objective: %s\n\n", env.objective().describe().c_str());

    for (const std::string agentName : {"GA", "ACO"}) {
        FarsiGymEnv searchEnv(options);
        auto agent =
            makeAgent(agentName, searchEnv.actionSpace(), {}, 11);
        RunConfig cfg;
        cfg.maxSamples = 1500;
        cfg.stopWhenSatisfied = true;
        const RunResult r = runSearch(searchEnv, *agent, cfg);

        const auto soc = searchEnv.decodeAction(r.bestAction);
        const auto sim =
            farsi::evaluateSoc(soc, options.graph);
        std::printf("%s (%zu samples):\n  %s\n", agentName.c_str(),
                    r.samplesUsed, soc.str().c_str());
        std::printf("  power %.3f W | latency %.3f ms (%.1f fps) | "
                    "area %.2f mm2 | distance-to-budget %.3f%s\n\n",
                    sim.powerW, sim.latencyMs, sim.fps(), sim.areaMm2,
                    -r.bestReward,
                    r.bestReward >= 0.0 ? "  [all budgets met]" : "");
    }
    return 0;
}
