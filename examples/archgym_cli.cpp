/**
 * @file
 * archgym_cli — command-line front end for the whole gymnasium: pick an
 * environment and workload, pick an agent, set a simulator budget, and
 * optionally dump the exploration trajectory as CSV for later dataset
 * aggregation.
 *
 * Usage:
 *   archgym_cli [--env NAME] [--agent NAME] [--samples N] [--seed N]
 *               [--hyper k=v[,k=v...]] [--log FILE]
 *               [--sweep N] [--sweep-dir DIR] [--shard-size S]
 *               [--threads T] [--pareto]
 *
 *   --env     dram-streaming | dram-random | dram-cloud1 | dram-cloud2 |
 *             timeloop-resnet50 | timeloop-resnet18 | timeloop-alexnet |
 *             timeloop-mobilenet | farsi-edge | farsi-audio | farsi-ar |
 *             maestro-resnet18 | maestro-vgg16      (default dram-cloud1)
 *   --agent   ACO | BO | GA | RL | RW | SA          (default GA)
 *   --samples simulator budget (per config in sweep mode, default 500)
 *   --seed    agent seed / sweep base seed          (default 1)
 *   --hyper   comma-separated hyperparameter overrides, e.g.
 *             population_size=32,mutation_prob=0.05
 *   --log     write the trajectory CSV to this path
 *
 * Sweep mode (--sweep N): run a sharded, resumable hyperparameter
 * lottery of N configurations drawn from the agent's default grid.
 * Shard manifests, per-config results (JSON lines), and streamed
 * per-shard trajectory CSVs land under --sweep-dir; re-running the
 * same command after an interruption resumes by skipping completed
 * shards (bit-identically — see core/trajectory.h for the contract).
 *
 *   --sweep N        number of lottery configurations
 *   --sweep-dir DIR  shard/manifest directory   (default archgym_sweep)
 *   --shard-size S   configurations per shard   (default 16)
 *   --threads T      worker threads             (default hardware)
 *   --pareto         report the <m0, m1, m2> Pareto frontier (all
 *                    minimized) of the logged/streamed transitions
 *
 * Cooperative worker mode (--sweep-worker, with --sweep N): join the
 * sweep under --sweep-dir as one worker of a fleet. Every process
 * launched with the *same* sweep arguments cooperates through
 * lease-based shard claiming with heartbeats; a worker that dies
 * mid-shard has its shard stolen and repaired (run-granular) by a
 * peer once its lease goes stale. See docs/sweep_service.md.
 *
 *   --sweep-worker   cooperative worker mode: print per-worker stats,
 *                    skip the dataset/pareto summary (peers may still
 *                    be writing)
 *   --worker-id ID   stable worker identity     (default pid:<pid>)
 *   --lease-ttl MS   heartbeat age peers treat as dead (default 10000)
 *   --heartbeat MS   heartbeat refresh cadence  (default lease-ttl/4)
 *
 * Fault isolation (sweep modes; see docs/sweep_service.md):
 *
 *   --max-attempts N   attempts per config before giving up (default 1)
 *   --run-deadline MS  per-run wall-clock deadline; a run past it is
 *                      cancelled at its next cooperative checkpoint
 *                      (default 0 = none)
 *   --quarantine       on exhausted attempts, record the config in the
 *                      shard's quarantine ledger and keep sweeping
 *                      instead of failing the sweep; quarantined runs
 *                      appear as explicit gap records in the results
 *
 * Exit codes: 0 success, 1 runtime error / incomplete worker sweep,
 * 2 usage error, 3 sweep complete but with quarantined configs.
 *
 * Proxy-screened mode (--proxy-screen, with --sweep N): simulate only a
 * pilot slice of the lottery for real, train a random-forest proxy on
 * the pilot trajectories, rank the remaining configurations through
 * batched proxy inference, and submit only the top-K frontier to the
 * simulator — the screen-then-simulate protocol of
 * docs/proxy_serving.md. The screen decision is recorded in
 * <sweep-dir>/screen.json, so re-running resumes onto the identical
 * frontier.
 *
 *   --proxy-screen     enable proxy-screened sweep mode
 *   --screen-top-k K   screened configs promoted to simulation (def. 8)
 *   --pilot N          pilot configs simulated for training  (def. 16)
 *   --columnar         serve datasets through the columnar row-group
 *                      reader (proxy training data in screen mode, the
 *                      summary/pareto dataset in plain sweep mode)
 *
 * Trace tooling (docs/trace_workloads.md):
 *
 *   --trace-profile F  standalone: profile the "cycle: R|W addr" trace
 *                      in F into a stack-distance CDF; write the JSON
 *                      to --trace-out (or stdout) and exit
 *   --trace-pattern S  a trace source name: streaming | random |
 *                      cloud1 | cloud2 | sd:<cdf.json> | emb.
 *                      With --trace-out: standalone, stream --trace-len
 *                      requests (seeded by --seed) to the file in
 *                      chunks and exit. Without: override the trace
 *                      workload of a dram-* environment.
 *   --trace-out F      output file for the two standalone modes above
 *   --trace-len N      requests to generate / env trace length
 *   --trace-streamed   evaluate the dram-* env by chunk-pull streaming
 *                      (flat memory at any --trace-len)
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "agents/registry.h"
#include "core/columnar.h"
#include "core/driver.h"
#include "core/pareto.h"
#include "envs/dram_gym_env.h"
#include "envs/farsi_gym_env.h"
#include "envs/maestro_gym_env.h"
#include "envs/timeloop_gym_env.h"
#include "mathutil/stats.h"
#include "proxy/proxy_screen.h"

namespace {

using namespace archgym;

std::unique_ptr<Environment>
makeEnv(const std::string &name,
        const dram::TraceSpec *trace_override = nullptr)
{
    if (name.rfind("dram-", 0) == 0) {
        DramGymEnv::Options o;
        const std::string trace = name.substr(5);
        if (trace == "streaming")
            o.pattern = dram::TracePattern::Streaming;
        else if (trace == "random")
            o.pattern = dram::TracePattern::Random;
        else if (trace == "cloud1")
            o.pattern = dram::TracePattern::Cloud1;
        else if (trace == "cloud2")
            o.pattern = dram::TracePattern::Cloud2;
        else
            return nullptr;
        o.objective = DramObjective::LatencyAndPower;
        o.latencyTargetNs =
            o.pattern == dram::TracePattern::Random ? 30.0 : 150.0;
        o.traceLength = 256;
        if (trace_override) {
            o.trace = *trace_override;
            // An override with no source keeps the env-name pattern;
            // the env's legacy resolution then reads traceLength.
            if (o.trace.source.empty())
                o.traceLength = o.trace.numRequests;
        }
        return std::make_unique<DramGymEnv>(o);
    }
    if (name.rfind("timeloop-", 0) == 0) {
        TimeloopGymEnv::Options o;
        const std::string net = name.substr(9);
        if (net == "resnet50")
            o.network = timeloop::resNet50();
        else if (net == "resnet18")
            o.network = timeloop::resNet18();
        else if (net == "alexnet")
            o.network = timeloop::alexNet();
        else if (net == "mobilenet")
            o.network = timeloop::mobileNet();
        else
            return nullptr;
        return std::make_unique<TimeloopGymEnv>(o);
    }
    if (name.rfind("farsi-", 0) == 0) {
        FarsiGymEnv::Options o;
        const std::string graph = name.substr(6);
        if (graph == "edge")
            o.graph = farsi::edgeDetection();
        else if (graph == "audio")
            o.graph = farsi::audioDecoder();
        else if (graph == "ar")
            o.graph = farsi::arOverlay();
        else
            return nullptr;
        return std::make_unique<FarsiGymEnv>(o);
    }
    if (name.rfind("maestro-", 0) == 0) {
        MaestroGymEnv::Options o;
        const std::string net = name.substr(8);
        if (net == "resnet18")
            o.network = timeloop::resNet18();
        else if (net == "vgg16")
            o.network = timeloop::vgg16();
        else
            return nullptr;
        return std::make_unique<MaestroGymEnv>(o);
    }
    return nullptr;
}

HyperParams
parseHyper(const std::string &spec)
{
    HyperParams hp;
    std::stringstream ss(spec);
    std::string pair;
    while (std::getline(ss, pair, ',')) {
        const auto eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument("bad --hyper entry: " + pair);
        hp.set(pair.substr(0, eq), std::stod(pair.substr(eq + 1)));
    }
    return hp;
}

/**
 * The environment's own objective, when its concrete type exposes one
 * (the proxy screen scores predicted metrics with it). Environments
 * without an objective accessor cannot run --proxy-screen.
 */
const Objective *
envObjective(const Environment &env)
{
    if (const auto *dram = dynamic_cast<const DramGymEnv *>(&env))
        return &dram->objective();
    if (const auto *farsi = dynamic_cast<const FarsiGymEnv *>(&env))
        return &farsi->objective();
    if (const auto *tl = dynamic_cast<const TimeloopGymEnv *>(&env))
        return &tl->objective();
    return nullptr;
}

/**
 * Print the Pareto frontier of the first three metrics (the paper's
 * native <latency, power, area>-shaped tuples), all minimized.
 */
void
printParetoFront(const std::vector<Transition> &transitions,
                 const std::vector<std::string> &metric_names)
{
    if (metric_names.size() < 3) {
        std::printf("pareto: environment reports %zu metrics, need 3\n",
                    metric_names.size());
        return;
    }
    const std::vector<std::size_t> metrics = {0, 1, 2};
    const std::vector<Sense> senses(3, Sense::Minimize);
    const auto front = paretoFront(transitions, metrics, senses);
    std::printf("pareto frontier <%s, %s, %s> (all minimized): "
                "%zu of %zu transitions\n",
                metric_names[0].c_str(), metric_names[1].c_str(),
                metric_names[2].c_str(), front.size(),
                transitions.size());
    const std::size_t show = front.size() < 10 ? front.size() : 10;
    for (std::size_t k = 0; k < show; ++k) {
        const Metrics &obs = transitions[front[k]].observation;
        std::printf("  #%-6zu %12.6g %12.6g %12.6g\n", front[k], obs[0],
                    obs[1], obs[2]);
    }
    if (show < front.size())
        std::printf("  ... %zu more\n", front.size() - show);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string envName = "dram-cloud1";
    std::string agentName = "GA";
    std::size_t samples = 500;
    std::uint64_t seed = 1;
    std::string hyperSpec;
    std::string logPath;
    std::size_t sweepConfigs = 0;
    std::string sweepDir = "archgym_sweep";
    std::size_t shardSize = 16;
    std::size_t threads = 0;
    bool pareto = false;
    bool sweepWorker = false;
    std::string workerId;
    std::uint64_t leaseTtl = 10000;
    std::uint64_t heartbeat = 0;
    RunAttemptPolicy attempts;
    bool proxyScreen = false;
    std::size_t screenTopK = 8;
    std::size_t pilotConfigs = 16;
    bool columnar = false;
    std::string traceProfilePath;
    std::string tracePattern;
    std::string traceOut;
    std::size_t traceLen = 0;  ///< 0 = mode-dependent default
    bool traceStreamed = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--env")
            envName = next();
        else if (arg == "--agent")
            agentName = next();
        else if (arg == "--samples")
            samples = std::stoul(next());
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--hyper")
            hyperSpec = next();
        else if (arg == "--log")
            logPath = next();
        else if (arg == "--sweep")
            sweepConfigs = std::stoul(next());
        else if (arg == "--sweep-dir")
            sweepDir = next();
        else if (arg == "--shard-size")
            shardSize = std::stoul(next());
        else if (arg == "--threads")
            threads = std::stoul(next());
        else if (arg == "--pareto")
            pareto = true;
        else if (arg == "--sweep-worker")
            sweepWorker = true;
        else if (arg == "--worker-id")
            workerId = next();
        else if (arg == "--lease-ttl")
            leaseTtl = std::stoull(next());
        else if (arg == "--heartbeat")
            heartbeat = std::stoull(next());
        else if (arg == "--max-attempts")
            attempts.maxAttempts = std::stoul(next());
        else if (arg == "--run-deadline")
            attempts.runDeadlineMs = std::stoull(next());
        else if (arg == "--quarantine")
            attempts.quarantine = true;
        else if (arg == "--proxy-screen")
            proxyScreen = true;
        else if (arg == "--screen-top-k")
            screenTopK = std::stoul(next());
        else if (arg == "--pilot")
            pilotConfigs = std::stoul(next());
        else if (arg == "--columnar")
            columnar = true;
        else if (arg == "--trace-profile")
            traceProfilePath = next();
        else if (arg == "--trace-pattern")
            tracePattern = next();
        else if (arg == "--trace-out")
            traceOut = next();
        else if (arg == "--trace-len")
            traceLen = std::stoul(next());
        else if (arg == "--trace-streamed")
            traceStreamed = true;
        else {
            std::fprintf(stderr,
                         "unknown option %s (see file header for usage)\n",
                         arg.c_str());
            return 2;
        }
    }

    if (!traceProfilePath.empty()) {
        // Standalone profile mode: trace file -> stack-distance CDF.
        std::ifstream in(traceProfilePath);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         traceProfilePath.c_str());
            return 1;
        }
        try {
            const auto trace = dram::parseTrace(in);
            const auto cdf = dram::profileTrace(trace);
            if (traceOut.empty()) {
                std::printf("%s\n", cdf.toJson().c_str());
            } else {
                cdf.save(traceOut);
                std::printf("profiled %llu accesses (%.1f%% cold, "
                            "%.1f%% overflow) -> %s\n",
                            static_cast<unsigned long long>(
                                cdf.totalAccesses),
                            100.0 * static_cast<double>(cdf.coldAccesses) /
                                static_cast<double>(cdf.totalAccesses),
                            100.0 *
                                static_cast<double>(cdf.overflowAccesses) /
                                static_cast<double>(cdf.totalAccesses),
                            traceOut.c_str());
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        return 0;
    }

    if (!tracePattern.empty() && !traceOut.empty()) {
        // Standalone generate mode: stream a synthetic trace to a file
        // in bounded chunks (flat memory at any length).
        dram::TraceSpec spec;
        spec.source = tracePattern;
        spec.numRequests = traceLen ? traceLen : 20000;
        spec.seed = seed;
        try {
            const auto source = dram::makeTraceSource(spec);
            std::ofstream out(traceOut);
            if (!out) {
                std::fprintf(stderr, "cannot open %s\n", traceOut.c_str());
                return 1;
            }
            std::vector<dram::MemoryRequest> chunk;
            std::size_t remaining = spec.numRequests;
            bool first = true;
            while (remaining > 0) {
                const std::size_t n =
                    remaining < spec.chunkRequests ? remaining
                                                   : spec.chunkRequests;
                chunk.clear();
                source->next(n, chunk);
                dram::writeTrace(out, chunk, first);
                first = false;
                remaining -= n;
            }
            std::printf("generated %zu '%s' requests -> %s\n",
                        spec.numRequests, tracePattern.c_str(),
                        traceOut.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        return 0;
    }

    std::optional<dram::TraceSpec> traceOverride;
    if (!tracePattern.empty() || traceStreamed || traceLen > 0) {
        dram::TraceSpec spec;
        spec.source = tracePattern;  // empty = keep the env-name pattern
        spec.numRequests = traceLen ? traceLen : 256;
        spec.streamed = traceStreamed;
        traceOverride = spec;
        if (envName.rfind("dram-", 0) != 0) {
            std::fprintf(stderr,
                         "--trace-pattern/--trace-streamed/--trace-len "
                         "apply to dram-* environments (or add "
                         "--trace-out for standalone generation)\n");
            return 2;
        }
    }
    const dram::TraceSpec *tracePtr =
        traceOverride ? &*traceOverride : nullptr;

    std::unique_ptr<Environment> env;
    try {
        env = makeEnv(envName, tracePtr);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (!env) {
        std::fprintf(stderr, "unknown environment '%s'\n",
                     envName.c_str());
        return 2;
    }

    if (sweepWorker && sweepConfigs == 0) {
        std::fprintf(stderr, "--sweep-worker requires --sweep N\n");
        return 2;
    }
    if (proxyScreen && sweepConfigs == 0) {
        std::fprintf(stderr, "--proxy-screen requires --sweep N\n");
        return 2;
    }
    if (proxyScreen && sweepWorker) {
        std::fprintf(stderr,
                     "--proxy-screen and --sweep-worker are exclusive "
                     "(the pilot/frontier stages are single-process "
                     "sweeps; point workers at those directories "
                     "instead)\n");
        return 2;
    }

    if (sweepConfigs > 0) {
        // Sharded lottery mode: N configs from the agent's default
        // grid, persisted (and resumable) under --sweep-dir.
        const auto configs =
            sampleLotteryConfigs(agentName, sweepConfigs, seed);
        const AgentBuilder builder =
            [&agentName](const ParamSpace &space, const HyperParams &h,
                         std::uint64_t s) {
                return makeAgent(agentName, space, h, s);
            };
        const EnvFactory factory = [&envName, tracePtr] {
            return makeEnv(envName, tracePtr);
        };

        RunConfig cfg;
        cfg.maxSamples = samples;

        if (proxyScreen) {
            const Objective *objective = envObjective(*env);
            if (objective == nullptr) {
                std::fprintf(stderr,
                             "--proxy-screen: environment '%s' does not "
                             "expose an objective\n",
                             envName.c_str());
                return 2;
            }
            ProxyScreenOptions popts;
            popts.directory = sweepDir;
            popts.objective = objective;
            popts.pilotConfigs = pilotConfigs;
            popts.screenTopK = screenTopK;
            popts.columnar = columnar;
            popts.shardSize = shardSize;
            popts.numThreads = threads;

            std::printf("proxy-screened lottery: env=%s agent=%s "
                        "configs=%zu pilot=%zu top-k=%zu samples=%zu "
                        "dir=%s (%s training reader)\n",
                        envName.c_str(), agentName.c_str(), sweepConfigs,
                        pilotConfigs, screenTopK, samples,
                        sweepDir.c_str(),
                        columnar ? "columnar" : "CSV");
            ProxyScreenResult screen;
            try {
                screen = runSweepProxyScreened(factory, agentName,
                                               builder, configs, cfg,
                                               popts, seed);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 1;
            }
            std::printf("pilot: %zu configs simulated, best reward %s\n",
                        screen.pilot.configs.size(),
                        summarize(screen.pilot.bestRewards)
                            .str()
                            .c_str());
            if (screen.screenReused)
                std::printf("screen: ranking reused from screen.json\n");
            else
                std::printf("screen: proxy trained on %zu transitions, "
                            "%zu proxy evaluations spent ranking %zu "
                            "configs\n",
                            screen.trainRowCount, screen.proxyEvaluations,
                            screen.ranking.size());
            std::printf("frontier (top %zu by proxy reward):\n",
                        screen.frontier.size());
            for (std::size_t j = 0; j < screen.frontier.size(); ++j) {
                std::printf("  config #%-5zu proxy %.6g   simulated "
                            "%.6g\n",
                            screen.frontier[j], screen.screenRewards[j],
                            screen.frontierSweep.bestRewards[j]);
            }
            const std::size_t simulated = screen.pilot.configs.size() +
                                          screen.frontier.size();
            std::printf("simulator budget: %zu of %zu configs simulated "
                        "(%.1f%%), rest screened by proxy\n",
                        simulated, sweepConfigs,
                        100.0 * static_cast<double>(simulated) /
                            static_cast<double>(sweepConfigs));
            return 0;
        }

        ShardedSweepOptions opts;
        opts.directory = sweepDir;
        opts.shardSize = shardSize;
        opts.numThreads = threads;
        opts.exportDataset = true;
        opts.workerId = workerId;
        opts.leaseTtlMs = leaseTtl;
        opts.heartbeatMs = heartbeat;
        opts.attempts = attempts;

        std::printf("sharded lottery: env=%s agent=%s configs=%zu "
                    "samples=%zu shard-size=%zu dir=%s%s%s\n",
                    envName.c_str(), agentName.c_str(), sweepConfigs,
                    samples, shardSize, sweepDir.c_str(),
                    sweepWorker ? " worker=" : "",
                    sweepWorker
                        ? (workerId.empty() ? "pid" : workerId.c_str())
                        : "");
        ShardedSweepResult sweep;
        try {
            sweep = runSweepSharded(factory, agentName, builder, configs,
                                    cfg, opts, seed);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        std::printf("shards: %zu total, %zu resumed from disk, %zu run\n",
                    sweep.shardCount, sweep.shardsSkipped,
                    sweep.shardsRun);
        if (sweep.runsQuarantined > 0)
            std::printf("quarantined: %zu of %zu configs gave up after "
                        "repeated failures (see shard_*.quarantine.jsonl "
                        "under %s)\n",
                        sweep.runsQuarantined, sweep.configs.size(),
                        sweepDir.c_str());
        if (sweepWorker) {
            // Worker-centric exit report; the fleet-level dataset
            // summary is for whoever aggregates after every worker
            // (this one included) reports complete.
            std::printf("worker: %zu shards stolen from stale leases, "
                        "%zu runs repaired from partials, sweep %s\n",
                        sweep.shardsStolen, sweep.runsRepaired,
                        sweep.complete ? "complete" : "incomplete");
            if (!sweep.complete)
                return 1;
            return sweep.runsQuarantined > 0 ? 3 : 0;
        }
        std::printf("best reward per config: %s\n",
                    summarize(sweep.bestRewards).str().c_str());

        Dataset dataset;
        if (columnar) {
            // Serve the summary through the columnar reader: convert
            // the shard CSVs once (skipped when the index already
            // exists) and re-ingest from the row-group pair.
            const std::string stem =
                (std::filesystem::path(sweepDir) / "columnar").string();
            if (!std::filesystem::exists(
                    ColumnarDatasetWriter::indexPath(stem)))
                writeColumnarFromCsvDirectory(sweepDir, stem,
                                              env->actionSpace(),
                                              env->metricNames());
            dataset = ColumnarDatasetReader::open(stem).toDataset();
        } else {
            dataset = Dataset::loadDirectory(sweepDir);
        }
        std::printf("streamed dataset: %zu trajectories, %zu "
                    "transitions (%s reader)\n",
                    dataset.logCount(), dataset.transitionCount(),
                    columnar ? "columnar" : "CSV");
        if (pareto)
            printParetoFront(dataset.flatten(), env->metricNames());
        return sweep.runsQuarantined > 0 ? 3 : 0;
    }

    HyperParams hp;
    try {
        hp = parseHyper(hyperSpec);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (agentName == "BO" && !hp.has("max_history"))
        hp.set("max_history", 96).set("num_candidates", 96);

    std::unique_ptr<Agent> agent;
    try {
        agent = makeAgent(agentName, env->actionSpace(), hp, seed);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    std::printf("env=%s agent=%s samples=%zu seed=%llu hyper={%s}\n",
                envName.c_str(), agentName.c_str(), samples,
                static_cast<unsigned long long>(seed),
                agent->hyperParams().str().c_str());

    RunConfig cfg;
    cfg.maxSamples = samples;
    cfg.logTrajectory = !logPath.empty() || pareto;
    const RunResult r = runSearch(*env, *agent, cfg);

    std::printf("best reward %.6g at sample %zu (%.3f s wall)\n",
                r.bestReward, r.bestSampleIndex, r.wallSeconds);
    std::printf("best design: %s\n",
                env->actionSpace().describe(r.bestAction).c_str());
    for (std::size_t m = 0; m < env->metricNames().size(); ++m) {
        std::printf("  %-24s %.6g\n", env->metricNames()[m].c_str(),
                    r.bestMetrics[m]);
    }

    if (!logPath.empty()) {
        std::ofstream out(logPath);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", logPath.c_str());
            return 1;
        }
        r.trajectory.writeCsv(out, env->actionSpace(),
                              env->metricNames());
        std::printf("trajectory (%zu transitions) -> %s\n",
                    r.trajectory.size(), logPath.c_str());
    }
    if (pareto)
        printParetoFront(r.trajectory.transitions(), env->metricNames());
    return 0;
}
