/**
 * @file
 * DNN accelerator DSE: find an Eyeriss-class datapath for ResNet-50 with
 * Bayesian optimization, then validate the design against AlexNet and
 * MobileNet to show workload sensitivity.
 */

#include <cstdio>

#include "agents/bayesian_opt.h"
#include "core/driver.h"
#include "core/pareto.h"
#include "envs/timeloop_gym_env.h"

int
main()
{
    using namespace archgym;

    TimeloopGymEnv::Options options;
    options.network = timeloop::resNet50();
    options.latencyTargetMs = 5.0;
    TimeloopGymEnv env(options);

    std::printf("Searching an accelerator for %s "
                "(target latency %.1f ms)\n",
                options.network.name.c_str(), options.latencyTargetMs);
    std::printf("  design space: %.3g points\n\n",
                env.actionSpace().cardinality());

    HyperParams hp;
    hp.set("length_scale", 0.2)
        .set("acquisition", 0)  // expected improvement
        .set("num_candidates", 128)
        .set("max_history", 96);
    BayesianOptAgent agent(env.actionSpace(), hp, 7);

    RunConfig cfg;
    cfg.maxSamples = 250;
    cfg.logTrajectory = true;
    const RunResult r = runSearch(env, agent, cfg);

    const auto design = env.decodeAction(r.bestAction);
    std::printf("Best design after %zu samples:\n  %s\n",
                r.samplesUsed, design.str().c_str());
    std::printf("  latency %.2f ms, energy %.0f uJ, area %.1f mm2\n\n",
                r.bestMetrics[0], r.bestMetrics[1], r.bestMetrics[2]);

    // Cross-workload validation: how does the ResNet-50 design fare on
    // other networks?
    for (const auto &net :
         {timeloop::alexNet(), timeloop::mobileNet()}) {
        const auto cost = timeloop::evaluateNetwork(design, net);
        std::printf("  on %-10s latency %.2f ms, energy %.0f uJ, "
                    "PE utilization %.0f%%\n",
                    net.name.c_str(), cost.latencyMs, cost.energyUj,
                    cost.utilization * 100.0);
    }

    // Because every transition was logged, the latency/energy trade-off
    // behind the scalar search falls out for free (core/pareto.h).
    const auto front = paretoFront(r.trajectory.transitions(), {0, 1},
                                   {Sense::Minimize, Sense::Minimize});
    std::printf("\nlatency/energy Pareto front (%zu of %zu explored "
                "designs):\n",
                front.size(), r.trajectory.size());
    for (std::size_t i : front) {
        const auto &t = r.trajectory[i];
        std::printf("  %6.2f ms / %8.0f uJ   %s\n", t.observation[0],
                    t.observation[1],
                    env.decodeAction(t.action).str().c_str());
    }
    return 0;
}
