/**
 * @file
 * Data-driven offline design search (the §7.3/§8 payoff): aggregate an
 * ArchGym dataset, train a proxy cost model, search the design space
 * through the proxy with a huge (simulator-free) candidate budget, then
 * validate the handful of winners on the real simulator.
 *
 * The comparison point: a direct GA search that spends the *same number
 * of simulator samples* the offline pipeline used for data collection
 * plus validation.
 */

#include <cstdio>

#include "agents/registry.h"
#include "core/driver.h"
#include "envs/dram_gym_env.h"
#include "proxy/offline_optimizer.h"
#include "proxy/proxy_model.h"

int
main()
{
    using namespace archgym;

    DramGymEnv::Options options;
    options.pattern = dram::TracePattern::Cloud2;
    options.objective = DramObjective::LatencyAndPower;
    options.latencyTargetNs = 1500.0;
    options.powerTargetW = 1.2;
    options.traceLength = 160;
    DramGymEnv env(options);

    // --- Phase A: collect a diverse dataset (counts as simulator cost).
    Dataset dataset;
    std::size_t collectionSamples = 0;
    for (const std::string agentName : {"ACO", "GA", "RW", "BO"}) {
        HyperParams hp;
        if (agentName == "BO")
            hp.set("num_candidates", 48).set("max_history", 64);
        auto agent = makeAgent(agentName, env.actionSpace(), hp, 7);
        RunConfig cfg;
        cfg.maxSamples = 250;
        cfg.logTrajectory = true;
        RunResult r = runSearch(env, *agent, cfg);
        collectionSamples += r.samplesUsed;
        dataset.add(std::move(r.trajectory));
    }

    ProxyCostModel proxy(env.actionSpace(), env.metricNames());
    proxy.train(dataset.flatten());
    std::printf("trained proxy on %zu transitions "
                "(%zu simulator samples)\n",
                dataset.transitionCount(), collectionSamples);

    // --- Phase B: offline search over the proxy.
    OfflineSearchConfig cfg;
    cfg.randomCandidates = 30000;
    cfg.topK = 5;
    Rng rng(13);
    const OfflineSearchResult offline =
        offlineSearch(proxy, env, env.objective(), cfg, rng);

    std::printf("\noffline search: %zu proxy evals, %zu simulator "
                "validations\n",
                offline.proxyEvaluations, offline.simulatorEvaluations);
    for (const auto &c : offline.validated) {
        std::printf("  predicted reward %8.3f -> actual %8.3f  "
                    "(lat %.0f ns, pow %.2f W)\n",
                    c.predictedReward, c.actualReward, c.actual[0],
                    c.actual[1]);
    }

    // --- Phase C: direct GA baseline at equal simulator budget.
    DramGymEnv directEnv(options);
    auto ga = makeAgent("GA", directEnv.actionSpace(), {}, 7);
    RunConfig directCfg;
    directCfg.maxSamples =
        collectionSamples + offline.simulatorEvaluations;
    const RunResult direct = runSearch(directEnv, *ga, directCfg);

    std::printf("\nsame simulator budget (%zu samples):\n",
                direct.samplesUsed);
    std::printf("  offline pipeline best actual reward : %.3f\n",
                offline.best().actualReward);
    std::printf("  direct GA best reward               : %.3f\n",
                direct.bestReward);
    std::printf("\nThe offline pipeline turns %zu nearly-free proxy "
                "evaluations into candidate\ndesigns, amortizing the "
                "simulator cost of the dataset — the §7 argument.\n",
                offline.proxyEvaluations);
    return 0;
}
