/**
 * @file
 * The §6.3 workflow: design a low-power (1 W target) DRAM memory
 * controller for a pointer-chasing trace with every seeded agent, and
 * print the resulting architecture parameters side by side (the Table 4
 * layout).
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "core/driver.h"
#include "envs/dram_gym_env.h"

int
main()
{
    using namespace archgym;

    DramGymEnv::Options options;
    options.pattern = dram::TracePattern::Random;  // pointer chasing
    options.objective = DramObjective::LowPower;
    options.powerTargetW = 1.0;
    options.traceLength = 256;

    std::printf("Designing a 1 W DRAM memory controller "
                "(pointer-chasing trace)\n\n");

    std::map<std::string, Action> bestActions;
    std::map<std::string, Metrics> bestMetrics;
    for (const std::string &name : agentNames()) {
        DramGymEnv env(options);
        HyperParams hp;
        if (name == "BO")
            hp.set("num_candidates", 64).set("max_history", 64);
        auto agent = makeAgent(name, env.actionSpace(), hp, 2023);
        RunConfig cfg;
        cfg.maxSamples = 800;
        const RunResult r = runSearch(env, *agent, cfg);
        bestActions[name] = r.bestAction;
        bestMetrics[name] = r.bestMetrics;
        std::printf("%-4s best reward %8.2f  power %.3f W  "
                    "latency %.1f ns\n",
                    name.c_str(), r.bestReward, r.bestMetrics[1],
                    r.bestMetrics[0]);
    }

    // Render the Table 4 style parameter comparison.
    DramGymEnv env(options);
    const ParamSpace &space = env.actionSpace();
    std::printf("\n%-22s", "Parameter");
    for (const auto &name : agentNames())
        std::printf(" %-14s", name.c_str());
    std::printf("\n");
    for (std::size_t d = 0; d < space.size(); ++d) {
        std::printf("%-22s", space.dim(d).name().c_str());
        for (const auto &name : agentNames()) {
            std::printf(" %-14s",
                        space.dim(d)
                            .valueName(bestActions[name][d])
                            .c_str());
        }
        std::printf("\n");
    }
    std::printf("%-22s", "Achieved power (W)");
    for (const auto &name : agentNames())
        std::printf(" %-14.3f", bestMetrics[name][1]);
    std::printf("\n");
    return 0;
}
