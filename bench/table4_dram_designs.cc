/**
 * @file
 * Reproduces Table 4: the architectural parameters found by each search
 * algorithm for a low-power (1 W target) DRAM memory controller on a
 * pointer-chasing (random access) trace.
 *
 * The paper's observations to check against the output:
 *  - every agent finds at least one design meeting the power target;
 *  - agents converge to *different* parameter combinations that achieve
 *    the same power (several roads to 1 W);
 *  - in the paper all agents pick a minimal MaxActiveTransactions —
 *    serialization stretches time and lowers average power. Our
 *    simulator reproduces that mechanism (see
 *    Controller.SerializationLowersPower in tests/test_dramsys.cc),
 *    though on this already low-contention trace the knob is not always
 *    binding.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "envs/dram_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Table 4: low-power (1 W) DRAM controller designs per "
                "agent, pointer-chasing trace");

    DramGymEnv::Options options;
    options.pattern = dram::TracePattern::Random;
    options.objective = DramObjective::LowPower;
    options.powerTargetW = 1.0;
    options.traceLength = 256;

    std::map<std::string, Action> designs;
    std::map<std::string, Metrics> metrics;
    std::map<std::string, bool> satisfied;
    for (const auto &name : agentNames()) {
        DramGymEnv env(options);
        // Small hyperparameter sweep per agent; keep the best design.
        Rng rng(404);
        HyperGrid grid = defaultHyperGrid(name);
        if (name == "BO") {
            grid.add("num_candidates", {64}).add("max_history", {64});
        }
        const auto configs = grid.randomSample(4, rng);
        double best = -1e300;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            auto agent =
                makeAgent(name, env.actionSpace(), configs[c], 500 + c);
            RunConfig cfg;
            cfg.maxSamples = 600;
            const RunResult r = runSearch(env, *agent, cfg);
            if (r.bestReward > best) {
                best = r.bestReward;
                designs[name] = r.bestAction;
                metrics[name] = r.bestMetrics;
                satisfied[name] =
                    env.objective().satisfied(r.bestMetrics);
            }
        }
    }

    DramGymEnv env(options);
    const ParamSpace &space = env.actionSpace();
    std::printf("\n%-22s", "Parameter");
    for (const auto &name : agentNames())
        std::printf(" %-14s", name.c_str());
    std::printf("\n");
    for (std::size_t d = 0; d < space.size(); ++d) {
        std::printf("%-22s", space.dim(d).name().c_str());
        for (const auto &name : agentNames()) {
            std::printf(" %-14s",
                        space.dim(d).valueName(designs[name][d]).c_str());
        }
        std::printf("\n");
    }
    std::printf("%-22s", "Achieved power (W)");
    for (const auto &name : agentNames())
        std::printf(" %-14.3f", metrics[name][1]);
    std::printf("\n%-22s", "Within 1% of target");
    int meeting = 0;
    for (const auto &name : agentNames()) {
        std::printf(" %-14s", satisfied[name] ? "yes" : "no");
        meeting += satisfied[name];
    }
    std::printf("\n\n%d/5 agents meet the 1 W target "
                "(paper: all agents find at least one such design)\n",
                meeting);
    return 0;
}
