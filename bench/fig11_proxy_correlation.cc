/**
 * @file
 * Reproduces Figure 11: actual-vs-predicted correlation of the proxy
 * cost model, single-source (ACO-only) vs diverse dataset.
 *
 * The paper's scatter plots show predictions hugging the diagonal only
 * for the diverse dataset; numerically that is a higher Pearson
 * correlation per target metric, which is what this bench reports,
 * alongside a coarse ASCII scatter of the power model.
 */

#include <array>

#include "bench_util.h"
#include "proxy/proxy_dataset.h"
#include "proxy/proxy_model.h"

using namespace archgym;
using namespace archgym::bench;

namespace {

void
asciiScatter(const std::vector<double> &actual,
             const std::vector<double> &predicted)
{
    constexpr int kSize = 16;
    std::array<std::array<char, kSize>, kSize> grid;
    for (auto &row : grid)
        row.fill(' ');
    const auto axs = minMaxNormalize(actual);
    const auto pxs = minMaxNormalize(predicted);
    for (std::size_t i = 0; i < axs.size(); ++i) {
        const int x = std::min(kSize - 1,
                               static_cast<int>(axs[i] * kSize));
        const int y = std::min(kSize - 1,
                               static_cast<int>(pxs[i] * kSize));
        grid[kSize - 1 - y][x] = '*';
    }
    for (const auto &row : grid) {
        std::printf("    |");
        for (char c : row)
            std::printf("%c", c);
        std::printf("|\n");
    }
    std::printf("     predicted (y) vs actual (x), both min-max scaled\n");
}

} // namespace

int
main()
{
    printHeader("Figure 11: actual vs predicted, single-source vs "
                "diverse dataset (DRAMGym power model)");

    DramGymEnv env = makeProxyEnv();
    const Dataset dataset = collectProxyDataset(env, 4, 450);
    const auto test = makeHeldOutSet(env, 200);

    ForestConfig cfg;
    cfg.numTrees = 40;
    Rng rng(66);

    for (bool diverse : {false, true}) {
        std::vector<Transition> train =
            diverse ? dataset.sampleDiverse(1600, proxyAgents(), rng)
                    : [&] {
                          Dataset aco;
                          for (std::size_t i = 0; i < dataset.logCount();
                               ++i) {
                              if (dataset.log(i).agentName() == "ACO")
                                  aco.add(dataset.log(i));
                          }
                          return aco.sample(1600, rng);
                      }();
        ProxyCostModel model(env.actionSpace(), env.metricNames(), cfg);
        model.train(train);
        const ProxyAccuracy acc = model.evaluate(test);

        std::printf("\n[%s dataset, n=%zu]\n",
                    diverse ? "Diverse (ACO+GA+RW+BO)" : "Single source "
                                                         "(ACO)",
                    train.size());
        for (std::size_t m = 0; m < acc.metricNames.size(); ++m) {
            std::printf("  %-12s correlation %-8s relative RMSE %s\n",
                        acc.metricNames[m].c_str(),
                        ProxyAccuracy::renderValue(acc.correlation[m])
                            .c_str(),
                        ProxyAccuracy::renderValue(acc.relativeRmse[m])
                            .c_str());
        }

        // Scatter for the power model (metric index 1).
        std::vector<double> actual, predicted;
        for (const auto &t : test) {
            actual.push_back(t.observation[1]);
            predicted.push_back(model.predict(t.action)[1]);
        }
        asciiScatter(actual, predicted);
    }
    std::printf("\nHigher correlation for the diverse dataset reproduces "
                "the Fig. 11 observation.\n");
    return 0;
}
