/**
 * @file
 * Reproduces Figure 12: (a) speedup of the ML proxy over the cycle-level
 * simulator and (b) per-target RMSE of the proxy models, single-source
 * vs diverse.
 *
 * google-benchmark measures a simulator evaluation vs a proxy
 * prediction. Note on magnitudes: the paper's baseline is DRAMSys, a
 * full SystemC TLM simulator (tens of ms per trace), giving ~2000x; our
 * ground truth is this repo's transaction-level simulator, which is
 * itself orders of magnitude faster than SystemC, so the measured ratio
 * is smaller at equal trace length. The bench also scales the trace to
 * show the ratio growing with simulator cost while proxy cost stays
 * flat — the mechanism behind the paper's number.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "proxy/proxy_dataset.h"
#include "proxy/proxy_model.h"

using namespace archgym;

namespace {

struct Setup
{
    std::unique_ptr<DramGymEnv> env;
    std::unique_ptr<ProxyCostModel> single;
    std::unique_ptr<ProxyCostModel> diverse;
    Action probe;
};

Setup &
setup()
{
    static Setup s = [] {
        Setup out;
        out.env = std::make_unique<DramGymEnv>(makeProxyEnv());
        const Dataset dataset = collectProxyDataset(*out.env, 4, 450);
        Rng rng(77);
        ForestConfig cfg;
        cfg.numTrees = 40;

        out.diverse = std::make_unique<ProxyCostModel>(
            out.env->actionSpace(), out.env->metricNames(), cfg);
        out.diverse->train(
            dataset.sampleDiverse(1600, proxyAgents(), rng));

        Dataset aco;
        for (std::size_t i = 0; i < dataset.logCount(); ++i)
            if (dataset.log(i).agentName() == "ACO")
                aco.add(dataset.log(i));
        out.single = std::make_unique<ProxyCostModel>(
            out.env->actionSpace(), out.env->metricNames(), cfg);
        out.single->train(aco.sample(1600, rng));

        out.probe = out.env->actionSpace().sample(rng);
        return out;
    }();
    return s;
}

void
BM_Simulator(benchmark::State &state)
{
    DramGymEnv::Options o;
    o.pattern = dram::TracePattern::Cloud1;
    o.traceLength = static_cast<std::size_t>(state.range(0));
    DramGymEnv env(o);
    Rng rng(5);
    const Action a = env.actionSpace().sample(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(env.simulate(a).avgLatencyNs);
    }
}
BENCHMARK(BM_Simulator)
    ->Arg(160)
    ->Arg(640)
    ->Arg(2560)
    ->Unit(benchmark::kMicrosecond)
    ->Name("Fig12a/Simulator/traceLen");

void
BM_Proxy(benchmark::State &state)
{
    Setup &s = setup();
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.diverse->predict(s.probe));
    }
}
BENCHMARK(BM_Proxy)->Unit(benchmark::kMicrosecond)->Name("Fig12a/Proxy");

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Fig 12b: RMSE table, single-source vs diverse.
    Setup &s = setup();
    const auto test = makeHeldOutSet(*s.env, 200);
    const ProxyAccuracy accS = s.single->evaluate(test);
    const ProxyAccuracy accD = s.diverse->evaluate(test);
    std::printf("\nFig 12b: proxy RMSE per target model "
                "(relative RMSE, %% of mean)\n");
    std::printf("  %-14s %-16s %-16s\n", "model", "single-source",
                "diverse");
    for (std::size_t m = 0; m < accS.metricNames.size(); ++m) {
        std::printf("  %-14s %-16.3f %-16.3f\n",
                    accS.metricNames[m].c_str(),
                    accS.relativeRmse[m] * 100.0,
                    accD.relativeRmse[m] * 100.0);
    }
    std::printf("\nPaper: diverse-dataset proxies reach <1%% RMSE and "
                "~2000x speedup over SystemC-based DRAMSys;\n"
                "our ground-truth simulator is transaction-level "
                "(~1000x faster than SystemC to begin with),\nso the "
                "measured ratio is correspondingly smaller at equal "
                "trace length and grows with trace cost.\n");
    return 0;
}
