/**
 * @file
 * Perf tracking for the lottery-scale sweep path: the sharded,
 * resumable sweep engine (runSweepSharded) with streaming dataset
 * export, plus the 3-metric Pareto skyline that post-processes the
 * streamed datasets.
 *
 * Three sections, emitted as "BENCH_sweep.json" (stdout line + file in
 * the working directory, same convention as the other perf trackers):
 *
 *  - sweep: fresh sharded-sweep throughput (configs/sec) on FARSIGym
 *    with the RW agent at 1/2/4/8 worker threads, trajectory export ON
 *    — i.e. what a lottery pays end to end including shard manifests,
 *    JSONL results, and per-shard CSV streaming.
 *  - resume: configs/sec when every shard is already complete on disk
 *    (pure manifest-validate + JSONL re-ingest), plus the measured
 *    overhead fraction of interrupt-at-half-then-resume vs one
 *    uninterrupted run.
 *  - service: cooperative-sweep machinery costs — lease claim/release
 *    cycles/sec (flock + exclusive create + heartbeat thread),
 *    checksummed partial-file appends/sec and repair re-ingest
 *    runs/sec, and the end-to-end overhead fraction of a worker kill
 *    mid-shard followed by a stale-lease steal + run-granular repair,
 *    vs one uninterrupted run.
 *  - resilience: fault-isolation costs — configs/sec with the
 *    isolation machinery armed (retry budget + quarantine) but no
 *    faults, i.e. the pure safety-net tax, and configs/sec of a sweep
 *    where ~6% of configs are deterministic poison that exhausts a
 *    3-attempt budget and lands in quarantine.
 *  - pareto: fronts/sec of the O(N log N) 3-metric skyline vs the
 *    all-pairs paretoFrontNaive oracle on a 100k-transition cloud —
 *    the frontier-extraction cost at streamed-lottery scale.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "bench_util.h"
#include "core/driver.h"
#include "core/fault_hooks.h"
#include "core/lease.h"
#include "core/pareto.h"
#include "core/trajectory.h"
#include "envs/farsi_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

namespace {

namespace fs = std::filesystem;

constexpr double kMinSeconds = 0.4;
constexpr std::size_t kMaxIters = 1000000;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Run fn repeatedly until the time budget is hit; returns calls/sec. */
template <typename Fn>
double
callsPerSecond(Fn &&fn)
{
    fn();  // warmup
    std::size_t calls = 0;
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && calls < kMaxIters) {
        fn();
        ++calls;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(calls) / seconds(start, now);
}

/** Wall seconds of a single fn() call. */
template <typename Fn>
double
timeOnce(Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return seconds(start, std::chrono::steady_clock::now());
}

} // namespace

int
main()
{
    double guard = 0.0;  // keep the optimizer honest

    // --- Sharded sweep throughput ------------------------------------
    const std::size_t kConfigs = 192;
    const std::size_t kSamples = 100;
    const std::size_t kShardSize = 24;
    const auto configs = lotteryConfigs("RW", kConfigs, 21);
    const AgentBuilder builder = [](const ParamSpace &space,
                                    const HyperParams &hp,
                                    std::uint64_t s) {
        return makeAgent("RW", space, hp, s);
    };
    const EnvFactory factory = [] {
        return std::unique_ptr<Environment>(
            std::make_unique<FarsiGymEnv>());
    };
    RunConfig runCfg;
    runCfg.maxSamples = kSamples;

    const fs::path dir =
        fs::temp_directory_path() / "archgym_perf_sweep_shards";
    const auto makeOpts = [&](std::size_t threads) {
        ShardedSweepOptions opts;
        opts.directory = dir.string();
        opts.shardSize = kShardSize;
        opts.numThreads = threads;
        opts.exportDataset = true;
        return opts;
    };

    std::printf("Sharded sweep engine (FARSIGym, RW, %zu configs x %zu "
                "samples, shard size %zu, export on)\n",
                kConfigs, kSamples, kShardSize);
    std::printf("%-8s %16s\n", "threads", "fresh configs/s");

    struct SweepPoint
    {
        std::size_t threads;
        double configsPerSec;
    };
    std::vector<SweepPoint> sweepPoints;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        const auto opts = makeOpts(threads);
        const double freshPerSec = callsPerSecond([&] {
            fs::remove_all(dir);
            const auto sweep = runSweepSharded(
                factory, "RW", builder, configs, runCfg, opts, 5);
            guard += sweep.bestRewards.front();
        });
        sweepPoints.push_back(
            {threads, freshPerSec * static_cast<double>(kConfigs)});
        std::printf("%-8zu %16.1f\n", threads,
                    sweepPoints.back().configsPerSec);
    }

    // Resume with everything complete: manifest validation + JSONL
    // re-ingest only (the fixed cost an interrupted lottery pays for
    // its already-finished shards). Sub-millisecond filesystem work is
    // noisy, so take the best of three measurements — thread count is
    // irrelevant here (nothing runs).
    double resumeConfigsPerSec = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto opts = makeOpts(1);
        const double perSec = callsPerSecond([&] {
            const auto sweep = runSweepSharded(
                factory, "RW", builder, configs, runCfg, opts, 5);
            guard += sweep.bestRewards.front();
        });
        resumeConfigsPerSec =
            std::max(resumeConfigsPerSec,
                     perSec * static_cast<double>(kConfigs));
    }
    std::printf("full resume (re-ingest only): %.1f configs/s\n",
                resumeConfigsPerSec);

    // --- Interrupt-at-half resume overhead ---------------------------
    const std::size_t kShardCount =
        (kConfigs + kShardSize - 1) / kShardSize;
    const auto optsOne = makeOpts(0);
    double uninterrupted = 0.0, interrupted = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        fs::remove_all(dir);
        uninterrupted += timeOnce([&] {
            guard += runSweepSharded(factory, "RW", builder, configs,
                                     runCfg, optsOne, 5)
                         .bestRewards.front();
        });
        fs::remove_all(dir);
        interrupted += timeOnce([&] {
            auto opts = optsOne;
            opts.maxShards = kShardCount / 2;
            runSweepSharded(factory, "RW", builder, configs, runCfg,
                            opts, 5);
            guard += runSweepSharded(factory, "RW", builder, configs,
                                     runCfg, optsOne, 5)
                         .bestRewards.front();
        });
    }
    const double resumeOverhead =
        uninterrupted > 0.0 ? interrupted / uninterrupted - 1.0 : 0.0;
    std::printf("\ninterrupt-at-%zu-shards + resume vs uninterrupted: "
                "%.3fs vs %.3fs (overhead %.1f%%)\n",
                kShardCount / 2, interrupted / 3.0, uninterrupted / 3.0,
                resumeOverhead * 100.0);

    // --- Cooperative service: lease claiming -------------------------
    const fs::path leaseDir =
        fs::temp_directory_path() / "archgym_perf_lease";
    fs::remove_all(leaseDir);
    fs::create_directories(leaseDir);
    LeaseOptions leaseOpts;
    leaseOpts.workerId = "bench";
    const double leaseClaimsPerSec = callsPerSecond([&] {
        auto lease =
            ShardLease::tryAcquire(leaseDir.string(), 0, leaseOpts);
        lease->release();
    });
    std::printf("\nlease claim+release: %.1f cycles/s\n",
                leaseClaimsPerSec);

    // --- Cooperative service: partial-file durability ----------------
    const fs::path partialDir =
        fs::temp_directory_path() / "archgym_perf_partial";
    fs::remove_all(partialDir);
    fs::create_directories(partialDir);
    const std::string pj = (partialDir / "bench.partial.jsonl").string();
    const std::string pc = (partialDir / "bench.partial.csvf").string();
    const std::string benchLine =
        "{\"config\":0,\"seed\":7,\"bestReward\":1.5,"
        "\"bestSampleIndex\":3,\"samplesUsed\":100,"
        "\"bestAction\":[0.25,0.5,0.75],\"hyper\":\"x=1\"}\n";
    const std::string benchBlock =
        "# env=Bench agent=RW hyper=\n0.25,0.5,0.75,1.5\n";
    double partialAppendsPerSec = 0.0;
    {
        ShardPartialWriter writer(pj, pc, 0, 0);
        partialAppendsPerSec = callsPerSecond(
            [&] { writer.append(0, benchLine, benchBlock); });
    }
    // Repair re-ingest throughput over a fixed-size dead-worker state.
    const std::size_t kPartialRuns = 512;
    fs::remove(pj);
    fs::remove(pc);
    {
        ShardPartialWriter writer(pj, pc, 0, 0);
        for (std::size_t i = 0; i < kPartialRuns; ++i)
            writer.append(i, benchLine, benchBlock);
    }
    const double reingestPerSec = callsPerSecond([&] {
        guard += static_cast<double>(
            readPartialResultLines(pj).records.size() +
            readPartialCsvFrames(pc).records.size());
    });
    const double repairReingestRunsPerSec =
        reingestPerSec * static_cast<double>(kPartialRuns);
    std::printf("partial durability: %.1f appends/s, repair re-ingest "
                "%.1f runs/s\n",
                partialAppendsPerSec, repairReingestRunsPerSec);

    // --- Cooperative service: kill + steal + repair overhead ---------
    // Kill the worker after half of the first shard's runs are durable,
    // then resume as a peer: the stale lease (TTL 0) is stolen and the
    // persisted half is re-ingested run-granularly instead of re-run.
    double killRepair = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        fs::remove_all(dir);
        killRepair += timeOnce([&] {
            std::size_t persisted = 0;
            faultHooks().afterRunPersisted =
                [&persisted](const std::string &worker, std::size_t,
                             std::size_t) {
                    if (++persisted == kShardSize / 2)
                        throw WorkerKilled(worker);
                };
            auto killedOpts = optsOne;
            killedOpts.leaseTtlMs = 0;  // immediately stealable
            try {
                runSweepSharded(factory, "RW", builder, configs, runCfg,
                                killedOpts, 5);
            } catch (const WorkerKilled &) {
            }
            faultHooks().clear();
            guard += runSweepSharded(factory, "RW", builder, configs,
                                     runCfg, killedOpts, 5)
                         .bestRewards.front();
        });
    }
    const double killRepairOverhead =
        uninterrupted > 0.0 ? killRepair / uninterrupted - 1.0 : 0.0;
    std::printf("kill-at-half-shard + steal + repair + resume vs "
                "uninterrupted: %.3fs vs %.3fs (overhead %.1f%%)\n",
                killRepair / 3.0, uninterrupted / 3.0,
                killRepairOverhead * 100.0);

    // --- Fault isolation: quarantine overhead ------------------------
    // Isolation armed (3 attempts, quarantine on) but fault-free: what
    // a healthy lottery pays for the safety net — per-run cancel
    // scopes, checkpoint polling in the simulator hot loops, and the
    // attempt accounting.
    RunAttemptPolicy isoPol;
    isoPol.maxAttempts = 3;
    isoPol.backoffBaseMs = 0;  // deterministic poison: never sleep
    isoPol.quarantine = true;
    auto isoOpts = makeOpts(1);
    isoOpts.attempts = isoPol;
    const double isolationCleanConfigsPerSec =
        callsPerSecond([&] {
            fs::remove_all(dir);
            guard += runSweepSharded(factory, "RW", builder, configs,
                                     runCfg, isoOpts, 5)
                         .bestRewards.at(1);
        }) *
        static_cast<double>(kConfigs);
    const double isolationOverhead =
        isolationCleanConfigsPerSec > 0.0
            ? sweepPoints.front().configsPerSec /
                      isolationCleanConfigsPerSec -
                  1.0
            : 0.0;

    // Poison sweep: every 16th config (6.25%) throws on every attempt,
    // so each poison config burns the full 3-attempt budget, appends
    // three ledger records, and finishes as a gap record in the
    // finals. Healthy configs pay nothing beyond the armed machinery.
    constexpr std::size_t kPoisonStride = 16;
    faultHooks().beforeRun = [](const std::string &, std::size_t,
                                std::size_t config) {
        if (config % kPoisonStride == 0)
            throw std::runtime_error("bench poison config");
    };
    std::size_t quarantinedPerSweep = 0;
    const double poisonSweepConfigsPerSec =
        callsPerSecond([&] {
            fs::remove_all(dir);
            const auto sweep = runSweepSharded(
                factory, "RW", builder, configs, runCfg, isoOpts, 5);
            quarantinedPerSweep = sweep.runsQuarantined;
            guard += sweep.bestRewards.at(1);
        }) *
        static_cast<double>(kConfigs);
    faultHooks().clear();
    const double poisonOverhead =
        poisonSweepConfigsPerSec > 0.0
            ? isolationCleanConfigsPerSec / poisonSweepConfigsPerSec -
                  1.0
            : 0.0;
    std::printf("\nfault isolation: armed fault-free %.1f configs/s "
                "(%.1f%% vs plain), %zu/%zu poison %.1f configs/s "
                "(%.1f%% vs armed fault-free)\n",
                isolationCleanConfigsPerSec, isolationOverhead * 100.0,
                quarantinedPerSweep, kConfigs, poisonSweepConfigsPerSec,
                poisonOverhead * 100.0);

    // --- 3-metric Pareto skyline at lottery scale --------------------
    const std::size_t kPoints = 100000;
    std::vector<Transition> cloud(kPoints);
    {
        Rng rng(33);
        for (auto &t : cloud)
            t.observation = {rng.uniform(0.0, 1.0),
                             rng.uniform(0.0, 1.0),
                             rng.uniform(0.0, 1.0)};
    }
    const std::vector<std::size_t> metrics = {0, 1, 2};
    const std::vector<Sense> senses(3, Sense::Minimize);

    // Best-of-3 on both sides: single-shot timings on a shared box are
    // noisy, and the gated speedup ratio must not flap with them.
    std::size_t frontSize = 0;
    double skylinePerSec = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        skylinePerSec = std::max(skylinePerSec, callsPerSecond([&] {
            frontSize = paretoFront(cloud, metrics, senses).size();
        }));
    }
    // The all-pairs oracle is far too slow to loop; time single runs.
    double naiveSeconds = std::numeric_limits<double>::infinity();
    std::size_t naiveFrontSize = 0;
    for (int rep = 0; rep < 3; ++rep) {
        naiveSeconds = std::min(naiveSeconds, timeOnce([&] {
            naiveFrontSize =
                paretoFrontNaive(cloud, metrics, senses).size();
        }));
    }
    const double naivePerSec = 1.0 / naiveSeconds;
    const double paretoSpeedup = skylinePerSec / naivePerSec;
    std::printf("\n3-metric Pareto frontier, %zu transitions (front %zu"
                ", naive front %zu)\n",
                kPoints, frontSize, naiveFrontSize);
    std::printf("skyline %.1f fronts/s vs naive %.3f fronts/s "
                "(%.0fx)\n",
                skylinePerSec, naivePerSec, paretoSpeedup);

    // --- JSON --------------------------------------------------------
    std::ostringstream json;
    json << "{\"bench\":\"sweep_hotloop\",\"sweep\":{\"env\":\"FARSIGym\""
         << ",\"agent\":\"RW\",\"configs\":" << kConfigs
         << ",\"samplesPerConfig\":" << kSamples << ",\"shardSize\":"
         << kShardSize << ",\"points\":[";
    for (std::size_t i = 0; i < sweepPoints.size(); ++i) {
        if (i)
            json << ",";
        json << "{\"threads\":" << sweepPoints[i].threads
             << ",\"configsPerSec\":" << sweepPoints[i].configsPerSec
             << "}";
    }
    json << "],\"resumeConfigsPerSec\":" << resumeConfigsPerSec
         << ",\"resumeOverheadFraction\":" << resumeOverhead
         << "},\"service\":{\"leaseClaimsPerSec\":" << leaseClaimsPerSec
         << ",\"partialAppendsPerSec\":" << partialAppendsPerSec
         << ",\"repairReingestRunsPerSec\":" << repairReingestRunsPerSec
         << ",\"killRepairResumeOverheadFraction\":" << killRepairOverhead
         << "},\"resilience\":{\"maxAttempts\":3,\"poisonStride\":"
         << kPoisonStride
         << ",\"quarantinedPerSweep\":" << quarantinedPerSweep
         << ",\"isolationCleanConfigsPerSec\":"
         << isolationCleanConfigsPerSec
         << ",\"isolationOverheadFraction\":" << isolationOverhead
         << ",\"poisonSweepConfigsPerSec\":" << poisonSweepConfigsPerSec
         << ",\"poisonOverheadFraction\":" << poisonOverhead
         << "},\"pareto\":{\"transitions\":" << kPoints
         << ",\"metrics\":3,\"frontSize\":" << frontSize
         << ",\"skylineFrontsPerSec\":" << skylinePerSec
         << ",\"naiveFrontsPerSec\":" << naivePerSec
         << ",\"speedup\":" << paretoSpeedup << "}}";

    std::printf("BENCH_sweep.json %s\n", json.str().c_str());
    std::ofstream out("BENCH_sweep.json");
    out << json.str() << "\n";
    if (guard == 0.0)
        std::fprintf(stderr, "warning: guard is zero\n");
    return 0;
}
