/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: agent
 * hyperparameter sweeps, box-plot style printing, and scaled-down sweep
 * budgets (see EXPERIMENTS.md for the paper-vs-repo scale mapping).
 */

#ifndef ARCHGYM_BENCH_BENCH_UTIL_H
#define ARCHGYM_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "core/driver.h"
#include "core/environment.h"
#include "mathutil/stats.h"

namespace archgym::bench {

/**
 * Run a hyperparameter-lottery sweep for one agent family: draw
 * `num_configs` configurations from the agent's default grid and run each
 * against the environment, returning the best reward of every
 * configuration (one lottery "ticket" each).
 */
inline std::vector<double>
lotterySweep(Environment &env, const std::string &agent_name,
             std::size_t num_configs, std::size_t samples,
             std::uint64_t seed)
{
    Rng rng(seed);
    HyperGrid grid = defaultHyperGrid(agent_name);
    // Keep BO's cubic GP cost bounded in sweep settings.
    if (agent_name == "BO") {
        grid.add("num_candidates", {64});
        grid.add("max_history", {64});
    }
    const auto configs = grid.randomSample(num_configs, rng);

    const AgentBuilder builder = [&agent_name](const ParamSpace &space,
                                               const HyperParams &hp,
                                               std::uint64_t s) {
        return makeAgent(agent_name, space, hp, s);
    };
    RunConfig runCfg;
    runCfg.maxSamples = samples;
    // Lottery tickets only need the best reward; do not retain the full
    // per-sample reward curve of every configuration.
    runCfg.recordRewardHistory = false;
    const SweepResult sweep =
        runSweep(env, agent_name, builder, configs, runCfg, seed);
    return sweep.bestRewards;
}

/**
 * Parallel variant of lotterySweep: identical results (seeds are
 * schedule-independent), one private environment per worker thread.
 */
inline std::vector<double>
lotterySweepParallel(const EnvFactory &env_factory,
                     const std::string &agent_name,
                     std::size_t num_configs, std::size_t samples,
                     std::uint64_t seed)
{
    Rng rng(seed);
    HyperGrid grid = defaultHyperGrid(agent_name);
    if (agent_name == "BO") {
        grid.add("num_candidates", {64});
        grid.add("max_history", {64});
    }
    const auto configs = grid.randomSample(num_configs, rng);
    const AgentBuilder builder = [&agent_name](const ParamSpace &space,
                                               const HyperParams &hp,
                                               std::uint64_t s) {
        return makeAgent(agent_name, space, hp, s);
    };
    RunConfig runCfg;
    runCfg.maxSamples = samples;
    runCfg.recordRewardHistory = false;
    const SweepResult sweep = runSweepParallel(
        env_factory, agent_name, builder, configs, runCfg, seed);
    return sweep.bestRewards;
}

/** Print one box-plot row: label plus the five-number summary. */
inline void
printBoxRow(const std::string &label, const std::vector<double> &values)
{
    const Summary s = summarize(values);
    std::printf("  %-6s n=%-3zu min %10.4g | q1 %10.4g | med %10.4g | "
                "q3 %10.4g | max %10.4g | iqr %10.4g\n",
                label.c_str(), s.count, s.min, s.q1, s.median, s.q3,
                s.max, s.iqr());
}

/** Relative IQR spread in percent, the paper's headline metric. */
inline double
spreadPercent(const std::vector<double> &values)
{
    return summarize(values).relativeSpread() * 100.0;
}

inline void
printHeader(const std::string &title)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("==============================================================\n");
}

} // namespace archgym::bench

#endif // ARCHGYM_BENCH_BENCH_UTIL_H
