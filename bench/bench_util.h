/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: agent
 * hyperparameter sweeps, box-plot style printing, and scaled-down sweep
 * budgets (see EXPERIMENTS.md for the paper-vs-repo scale mapping).
 */

#ifndef ARCHGYM_BENCH_BENCH_UTIL_H
#define ARCHGYM_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "core/driver.h"
#include "core/environment.h"
#include "mathutil/stats.h"

namespace archgym::bench {

/** Draw `num_configs` lottery configurations from an agent family's
 *  default grid (BO bounded) — see sampleLotteryConfigs in the agent
 *  registry, which all sweep front ends share. */
inline std::vector<HyperParams>
lotteryConfigs(const std::string &agent_name, std::size_t num_configs,
               std::uint64_t seed)
{
    return sampleLotteryConfigs(agent_name, num_configs, seed);
}

/**
 * Run a hyperparameter-lottery sweep for one agent family: draw
 * `num_configs` configurations from the agent's default grid and run each
 * against the environment, returning the best reward of every
 * configuration (one lottery "ticket" each).
 */
inline std::vector<double>
lotterySweep(Environment &env, const std::string &agent_name,
             std::size_t num_configs, std::size_t samples,
             std::uint64_t seed)
{
    const auto configs = lotteryConfigs(agent_name, num_configs, seed);

    const AgentBuilder builder = [&agent_name](const ParamSpace &space,
                                               const HyperParams &hp,
                                               std::uint64_t s) {
        return makeAgent(agent_name, space, hp, s);
    };
    RunConfig runCfg;
    runCfg.maxSamples = samples;
    // Lottery tickets only need the best reward; do not retain the full
    // per-sample reward curve of every configuration.
    runCfg.recordRewardHistory = false;
    const SweepResult sweep =
        runSweep(env, agent_name, builder, configs, runCfg, seed);
    return sweep.bestRewards;
}

/**
 * Parallel variant of lotterySweep: identical results (seeds are
 * schedule-independent), one private environment per worker thread.
 */
inline std::vector<double>
lotterySweepParallel(const EnvFactory &env_factory,
                     const std::string &agent_name,
                     std::size_t num_configs, std::size_t samples,
                     std::uint64_t seed)
{
    const auto configs = lotteryConfigs(agent_name, num_configs, seed);
    const AgentBuilder builder = [&agent_name](const ParamSpace &space,
                                               const HyperParams &hp,
                                               std::uint64_t s) {
        return makeAgent(agent_name, space, hp, s);
    };
    RunConfig runCfg;
    runCfg.maxSamples = samples;
    runCfg.recordRewardHistory = false;
    const SweepResult sweep = runSweepParallel(
        env_factory, agent_name, builder, configs, runCfg, seed);
    return sweep.bestRewards;
}

/**
 * Sharded, resumable variant of lotterySweep (identical best rewards:
 * the per-config seeds share the index-only formula): runs through
 * runSweepSharded, persisting shard manifests/results under `directory`
 * and streaming trajectories when `export_dataset` is set. The
 * directory is wiped first so the figure benches always measure a
 * fresh sweep, not a resume.
 */
inline std::vector<double>
lotterySweepSharded(const EnvFactory &env_factory,
                    const std::string &agent_name,
                    std::size_t num_configs, std::size_t samples,
                    std::uint64_t seed, const std::string &directory,
                    std::size_t shard_size = 4,
                    bool export_dataset = false)
{
    const auto configs = lotteryConfigs(agent_name, num_configs, seed);
    const AgentBuilder builder = [&agent_name](const ParamSpace &space,
                                               const HyperParams &hp,
                                               std::uint64_t s) {
        return makeAgent(agent_name, space, hp, s);
    };
    RunConfig runCfg;
    runCfg.maxSamples = samples;
    runCfg.recordRewardHistory = false;
    ShardedSweepOptions opts;
    opts.directory = directory;
    opts.shardSize = shard_size;
    opts.exportDataset = export_dataset;
    std::filesystem::remove_all(directory);
    const ShardedSweepResult sweep = runSweepSharded(
        env_factory, agent_name, builder, configs, runCfg, opts, seed);
    return sweep.bestRewards;
}

/** Print one box-plot row: label plus the five-number summary. */
inline void
printBoxRow(const std::string &label, const std::vector<double> &values)
{
    const Summary s = summarize(values);
    std::printf("  %-6s n=%-3zu min %10.4g | q1 %10.4g | med %10.4g | "
                "q3 %10.4g | max %10.4g | iqr %10.4g\n",
                label.c_str(), s.count, s.min, s.q1, s.median, s.q3,
                s.max, s.iqr());
}

/** Relative IQR spread in percent, the paper's headline metric. */
inline double
spreadPercent(const std::vector<double> &values)
{
    return summarize(values).relativeSpread() * 100.0;
}

inline void
printHeader(const std::string &title)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("==============================================================\n");
}

} // namespace archgym::bench

#endif // ARCHGYM_BENCH_BENCH_UTIL_H
