/**
 * @file
 * Reproduces Figure 10: proxy-model RMSE as a function of dataset size
 * and dataset diversity.
 *
 * Four dataset sizes are drawn twice from the same trajectory pool: once
 * from a single agent (ACO only) and once split evenly across four
 * agents (the "Diverse dataset" of §7.1). A random forest per metric is
 * trained on each and evaluated on held-out random designs.
 *
 * Paper claims to reproduce: RMSE falls with dataset size, and at equal
 * size the diverse composition achieves lower error — increasingly so at
 * larger sizes (up to 42x average RMSE reduction in the paper's setup).
 */

#include <filesystem>

#include "bench_util.h"
#include "proxy/proxy_dataset.h"
#include "proxy/proxy_model.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Figure 10: proxy RMSE vs dataset size and diversity "
                "(DRAMGym)");

    DramGymEnv env = makeProxyEnv();
    // Pool: 4 agents x 4 hyperparameter runs x 450 samples each,
    // collected through the sharded sweep engine — trajectories stream
    // into per-shard CSVs as runs complete, are converted to the
    // columnar row-group format, and the proxy trains from the
    // index-backed reader: the §3.4 artifact flow end to end.
    const std::string shardDir =
        (std::filesystem::temp_directory_path() / "archgym_fig10_shards")
            .string();
    const Dataset dataset = collectProxyDatasetStreamed(shardDir, 4, 450);
    const auto test = makeHeldOutSet(env, 200);
    std::printf("trajectory pool: %zu transitions from %zu runs "
                "(streamed via %s)\n\n",
                dataset.transitionCount(), dataset.logCount(),
                shardDir.c_str());

    const std::size_t sizes[] = {150, 400, 900, 1600};  // Datasets 1-4
    ForestConfig cfg;
    cfg.numTrees = 40;

    std::printf("%-12s %-14s %-12s %-12s %-12s %-12s\n", "dataset",
                "composition", "size", "rmse(lat)", "rmse(pow)",
                "rmse(en)");
    std::vector<double> singleMean, diverseMean;
    Rng rng(55);
    int idx = 1;
    for (std::size_t size : sizes) {
        for (bool diverse : {false, true}) {
            const DatasetExperiment exp = runDatasetExperiment(
                dataset, env.actionSpace(), env.metricNames(), size,
                diverse, proxyAgents(), test, cfg, rng);
            std::printf("Dataset %-4d %-14s %-12zu %-12.4g %-12.4g "
                        "%-12.4g  (mean rel. %.2f%%)\n",
                        idx, diverse ? "diverse" : "ACO-only", size,
                        exp.accuracy.rmse[0], exp.accuracy.rmse[1],
                        exp.accuracy.rmse[2],
                        exp.accuracy.meanRelativeRmse() * 100.0);
            (diverse ? diverseMean : singleMean)
                .push_back(exp.accuracy.meanRelativeRmse());
        }
        ++idx;
    }

    std::printf("\nmean relative RMSE, largest dataset: ACO-only %.2f%% "
                "vs diverse %.2f%% (ratio %.2fx)\n",
                singleMean.back() * 100.0, diverseMean.back() * 100.0,
                diverseMean.back() > 0.0
                    ? singleMean.back() / diverseMean.back()
                    : 0.0);
    std::printf("size trend (ACO-only, smallest -> largest): "
                "%.2f%% -> %.2f%%\n",
                singleMean.front() * 100.0, singleMean.back() * 100.0);
    return 0;
}
