/**
 * @file
 * Ablation (DESIGN.md §5): DRAM scheduler policy gain as a function of
 * trace locality. FR-FCFS's benefit over FIFO comes from harvesting row
 * hits, so the gap should widen with locality (streaming > cloud >
 * random) and largely vanish on pointer-chasing traffic.
 */

#include <cstdio>

#include "bench_util.h"
#include "dramsys/controller.h"
#include "dramsys/trace_gen.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Ablation: scheduler policy vs trace locality "
                "(avg latency ns / row-hit rate)");

    const dram::TracePattern patterns[] = {
        dram::TracePattern::Streaming, dram::TracePattern::Cloud2,
        dram::TracePattern::Cloud1, dram::TracePattern::Random};
    const dram::SchedulerPolicy scheds[] = {
        dram::SchedulerPolicy::Fifo, dram::SchedulerPolicy::FrFcFs,
        dram::SchedulerPolicy::FrFcFsGrp};

    std::printf("%-12s", "trace");
    for (auto s : scheds)
        std::printf(" %-22s", toString(s));
    std::printf(" FIFO/FRFCFS latency\n");

    for (auto pattern : patterns) {
        dram::TraceConfig tc;
        tc.pattern = pattern;
        tc.numRequests = 1024;
        tc.seed = 3;
        const auto trace = dram::generateTrace(tc);

        std::printf("%-12s", toString(pattern));
        double fifoLat = 0.0, frLat = 0.0;
        for (auto sched : scheds) {
            dram::ControllerConfig cfg;
            cfg.scheduler = sched;
            cfg.pagePolicy = dram::PagePolicy::Open;
            dram::DramController ctrl(dram::MemSpec{}, cfg);
            const auto r = ctrl.run(trace);
            std::printf(" %9.1f / %-10.2f", r.avgLatencyNs,
                        r.rowHitRate());
            if (sched == dram::SchedulerPolicy::Fifo)
                fifoLat = r.avgLatencyNs;
            if (sched == dram::SchedulerPolicy::FrFcFs)
                frLat = r.avgLatencyNs;
        }
        std::printf(" %.3fx\n", fifoLat / frLat);
    }
    return 0;
}
