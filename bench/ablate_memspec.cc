/**
 * @file
 * Ablation: DRAM device choice (DDR4-2400 / DDR4-3200 / LPDDR4-3200)
 * under the same controller configuration and traces. Verifies the DSE
 * substrate generalizes across device presets and quantifies how much of
 * the design-point cost is device- vs controller-determined — the
 * "exchange ArchitectureFoo's internals, keep the interface" property.
 */

#include <cstdio>

#include "bench_util.h"
#include "dramsys/controller.h"
#include "dramsys/memspec_presets.h"
#include "dramsys/trace_gen.h"
#include "envs/dram_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Ablation: DRAM device preset vs performance/power "
                "(same controller config)");

    std::printf("%-14s %-12s %-12s %-12s %-12s\n", "device", "trace",
                "latency ns", "power W", "bw GB/s");
    for (const auto &name : dram::memSpecNames()) {
        for (auto pattern :
             {dram::TracePattern::Streaming, dram::TracePattern::Random}) {
            dram::TraceConfig tc;
            tc.pattern = pattern;
            tc.numRequests = 512;
            tc.seed = 3;
            dram::DramController ctrl(dram::memSpecByName(name),
                                      dram::ControllerConfig{});
            const auto r = ctrl.run(dram::generateTrace(tc));
            std::printf("%-14s %-12s %-12.1f %-12.3f %-12.2f\n",
                        name.c_str(), toString(pattern), r.avgLatencyNs,
                        r.power.avgPowerW, r.bandwidthGBps);
        }
    }

    // The lottery result is device-independent: rerun one Fig. 4 cell on
    // the mobile part.
    std::printf("\n[lottery spot-check on LPDDR4-3200, cloud-1, "
                "low-power]\n");
    DramGymEnv::Options o;
    o.pattern = dram::TracePattern::Cloud1;
    o.objective = DramObjective::LowPower;
    o.powerTargetW = 0.6;  // mobile envelope
    o.traceLength = 160;
    o.spec = dram::lpddr4_3200();
    DramGymEnv env(o);
    for (const auto &agent : agentNames()) {
        const auto best = lotterySweep(env, agent, 8, 80, 505);
        printBoxRow(agent, best);
    }
    return 0;
}
