/**
 * @file
 * Reproduces Figure 6: GAMMA's domain-specific operators vs vanilla GA
 * variants on the MAESTRO mapping space, for ResNet-18 and VGG16.
 *
 * Variants (as named in §6.1):
 *   GAMMA (GA-V1) : aging + growth + reordering (all domain operators)
 *   GA+RO         : reordering only
 *   GA+AG         : aging only
 *   GA+GR         : growth only
 *   GA-ArchGym    : vanilla GA, no domain operators
 *
 * Each variant gets the same hyperparameter sweep budget; the reported
 * number is the best achieved latency (runtime cycles, lower is better).
 * The paper's claim: all variants are roughly equally effective, and the
 * well-tuned vanilla GA matches or beats GAMMA.
 */

#include <limits>

#include "bench_util.h"
#include "envs/maestro_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

namespace {

struct Variant
{
    std::string name;
    HyperParams ops;  ///< domain-operator knobs layered onto the sweep
};

std::vector<Variant>
variants()
{
    return {
        {"GAMMA(GA-V1)", HyperParams{{"max_age", 5},
                                     {"growth_add", 4},
                                     {"reorder_prob", 0.3}}},
        {"GA+RO", HyperParams{{"reorder_prob", 0.3}}},
        {"GA+AG", HyperParams{{"max_age", 5}}},
        {"GA+GR", HyperParams{{"growth_add", 4}}},
        {"GA-ArchGym", HyperParams{}},
    };
}

} // namespace

int
main()
{
    printHeader("Figure 6: GAMMA domain-specific operators vs vanilla GA "
                "(best latency, runtime cycles; lower is better)");

    constexpr std::size_t kConfigs = 10;
    constexpr std::size_t kSamples = 400;

    for (const auto &network : {timeloop::resNet18(), timeloop::vgg16()}) {
        std::printf("\n[%s]\n", network.name.c_str());
        MaestroGymEnv::Options o;
        o.network = network;
        MaestroGymEnv env(o);

        double vanillaBest = 0.0;
        double gammaBest = 0.0;
        for (const auto &variant : variants()) {
            Rng rng(31);
            auto configs = defaultHyperGrid("GA").randomSample(kConfigs,
                                                               rng);
            // Layer the variant's domain operators on every config.
            for (auto &hp : configs)
                for (const auto &[k, v] : variant.ops.values())
                    hp.set(k, v);

            const AgentBuilder builder =
                [](const ParamSpace &space, const HyperParams &hp,
                   std::uint64_t seed) {
                    return makeAgent("GA", space, hp, seed);
                };
            RunConfig cfg;
            cfg.maxSamples = kSamples;
            const SweepResult sweep =
                runSweep(env, variant.name, builder, configs, cfg, 31);

            // Convert rewards (1/runtime) to latencies.
            std::vector<double> latencies;
            double best = std::numeric_limits<double>::infinity();
            for (double r : sweep.bestRewards) {
                const double cycles = r > 0.0 ? 1.0 / r : 1e18;
                latencies.push_back(cycles);
                best = std::min(best, cycles);
            }
            printBoxRow(variant.name.substr(0, 6), latencies);
            std::printf("        %-14s best latency: %.4g cycles\n",
                        variant.name.c_str(), best);
            if (variant.name == "GA-ArchGym")
                vanillaBest = best;
            if (variant.name == "GAMMA(GA-V1)")
                gammaBest = best;
        }
        std::printf("  vanilla-GA best / GAMMA best = %.3f "
                    "(<= ~1 reproduces the paper's finding that tuned "
                    "vanilla GA matches GAMMA)\n",
                    vanillaBest / gammaBest);
    }
    return 0;
}
