/**
 * @file
 * Perf tracking for the Bayesian-optimization hot loop: the steady
 * state where history sits at the sliding-window limit and every new
 * observation evicts an old one.
 *
 * Three sections, each optimized-vs-seed:
 *
 *  - steady state: samples/sec of a windowed BO search (window 150 /
 *    300 / 600, 256 candidates) once history is pinned at max_history.
 *    The optimized path absorbs each sample with a rank-1 Cholesky
 *    bordering update plus rank-1 downdates for the eviction plan and
 *    scores candidates through one blocked multi-RHS solve; the seed
 *    path (`reference_impl`) refactorizes the kernel matrix in O(n^3)
 *    on every trim and runs per-candidate scalar predicts. Both agents
 *    are pre-filled through observe() only (no GP work), so the timed
 *    region isolates exactly the per-sample surrogate cost.
 *
 *  - predict: queries/sec of GaussianProcess::predictBatch vs a loop
 *    of scalar predict() calls on a fitted 600-point GP, 256 queries
 *    per sweep — the candidate-scoring kernel in isolation.
 *
 *  - search dispatch: env-steps/sec of runSearch per-step vs batchEval
 *    for BO and RL on FARSIGym (microsecond steps, where the batched
 *    ask-tell path and chunked stepBatch dispatch matter).
 *
 * Emits a machine-readable line prefixed "BENCH_bo.json " on stdout and
 * writes the same JSON to BENCH_bo.json in the working directory,
 * alongside the other BENCH_*.json trackers.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agents/bayesian_opt.h"
#include "agents/registry.h"
#include "core/driver.h"
#include "core/toy_envs.h"
#include "envs/farsi_gym_env.h"

using namespace archgym;

namespace {

constexpr double kMinSeconds = 0.4;
constexpr std::size_t kMaxSteps = 200000;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Run fn until the time budget is hit; returns calls/sec. */
template <typename Fn>
double
callsPerSecond(Fn &&fn, std::size_t batch = 1)
{
    fn();  // warmup (first-call setup excluded, as in steady state)
    std::size_t steps = 0;
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && steps < kMaxSteps) {
        for (std::size_t b = 0; b < batch; ++b)
            fn();
        steps += batch;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(steps) / seconds(start, now);
}

/**
 * Samples/sec of one BO ask-tell cycle with history pinned at `window`.
 * Pre-fill goes through observe() only — no GP work on either path —
 * so the timed loop measures exactly the steady-state surrogate cost
 * (the callsPerSecond warmup call absorbs the initial full fit, which
 * both paths share).
 */
double
steadyStateSamplesPerSec(std::size_t window, bool reference,
                         double &guard)
{
    QuadraticEnv env({7.0, 13.0, 21.0, 4.0});
    HyperParams hp;
    hp.set("max_history", static_cast<std::int64_t>(window))
        .set("num_candidates", 256)
        .set("reference_impl", reference ? 1 : 0);
    BayesianOptAgent agent(env.actionSpace(), hp, 97);

    // Fill the window past the first trim so every timed observe
    // evicts: observe() alone never fits, so this is cheap even for
    // the reference path at window 600.
    Rng fill(11);
    for (std::size_t i = 0; i < window + 8; ++i) {
        const Action a = env.actionSpace().sample(fill);
        const StepResult sr = env.step(a);
        agent.observe(a, sr.observation, sr.reward);
    }

    return callsPerSecond([&] {
        const Action a = agent.selectAction();
        const StepResult sr = env.step(a);
        agent.observe(a, sr.observation, sr.reward);
        guard += sr.reward;
    });
}

/** Env-steps/sec of a full BO/RL search through runSearch. */
double
searchStepsPerSec(Environment &env, const std::string &agent_name,
                  const HyperParams &hp, bool batched,
                  std::size_t max_samples, double &guard)
{
    RunConfig cfg;
    cfg.maxSamples = max_samples;
    cfg.recordRewardHistory = false;
    cfg.batchEval = batched;
    std::size_t steps = 0;
    {
        auto agent = makeAgent(agent_name, env.actionSpace(), hp, 31);
        guard += runSearch(env, *agent, cfg).bestReward;  // warmup
    }
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && steps < kMaxSteps) {
        auto agent = makeAgent(agent_name, env.actionSpace(), hp, 31);
        const RunResult r = runSearch(env, *agent, cfg);
        guard += r.bestReward;
        steps += r.samplesUsed;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(steps) / seconds(start, now);
}

struct WindowResult
{
    std::size_t window;
    double samplesPerSec = 0.0;
    double refitSamplesPerSec = 0.0;
    double speedup() const { return samplesPerSec / refitSamplesPerSec; }
};

struct SearchResult
{
    std::string agent;
    double batchedStepsPerSec = 0.0;
    double perStepStepsPerSec = 0.0;
    double speedup() const
    {
        return batchedStepsPerSec / perStepStepsPerSec;
    }
};

} // namespace

int
main()
{
    double guard = 0.0;  // keep the optimizer honest

    // --- Steady-state windowed search ---------------------------------
    std::printf("BO steady-state throughput (history at max_history, "
                "256 candidates, samples/sec)\n");
    std::printf("%-8s %14s %14s %9s\n", "window", "samples/s",
                "refit/s", "speedup");
    std::vector<WindowResult> windows;
    for (const std::size_t window : {150u, 300u, 600u}) {
        WindowResult r;
        r.window = window;
        r.samplesPerSec =
            steadyStateSamplesPerSec(window, /*reference=*/false, guard);
        r.refitSamplesPerSec =
            steadyStateSamplesPerSec(window, /*reference=*/true, guard);
        std::printf("%-8zu %14.1f %14.1f %8.2fx\n", window,
                    r.samplesPerSec, r.refitSamplesPerSec, r.speedup());
        windows.push_back(r);
    }

    // --- Scalar vs batched GP predict ---------------------------------
    const std::size_t kGpPoints = 600;
    const std::size_t kQueries = 256;
    GaussianProcess gp(0.2, 1.0, 1e-4);
    {
        Rng rng(5);
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        for (std::size_t i = 0; i < kGpPoints; ++i) {
            xs.push_back({rng.uniform(), rng.uniform(), rng.uniform(),
                          rng.uniform()});
            ys.push_back(rng.uniform(-2.0, 2.0));
        }
        gp.fit(xs, ys);
    }
    std::vector<std::vector<double>> queries;
    {
        Rng rng(6);
        for (std::size_t q = 0; q < kQueries; ++q) {
            queries.push_back({rng.uniform(), rng.uniform(),
                               rng.uniform(), rng.uniform()});
        }
    }
    std::vector<double> means, vars;
    const double batchSweepsPerSec = callsPerSecond([&] {
        gp.predictBatch(queries, means, vars);
        guard += means[0] + vars[0];
    });
    const double scalarSweepsPerSec = callsPerSecond([&] {
        for (const auto &q : queries) {
            double mean, var;
            gp.predict(q, mean, var);
            guard += mean + var;
        }
    });
    const double batchQps =
        batchSweepsPerSec * static_cast<double>(kQueries);
    const double scalarQps =
        scalarSweepsPerSec * static_cast<double>(kQueries);
    std::printf("\nGP predict on %zu training points, %zu queries/sweep "
                "(queries/sec)\n",
                kGpPoints, kQueries);
    std::printf("%-8s %14.1f\n%-8s %14.1f\n%-8s %13.2fx\n", "batch",
                batchQps, "scalar", scalarQps, "speedup",
                batchQps / scalarQps);

    // --- Per-step vs batched search dispatch --------------------------
    std::printf("\nSearch dispatch on FARSIGym (env-steps/sec)\n");
    std::printf("%-8s %14s %14s %9s\n", "agent", "batched/s",
                "per-step/s", "speedup");
    std::vector<SearchResult> searches;
    {
        FarsiGymEnv env;
        const std::vector<std::pair<std::string, HyperParams>> agents = {
            {"RL", {{"batch_size", 16}}},
            {"BO",
             {{"num_candidates", 64},
              {"max_history", 64},
              {"n_init", 8}}},
        };
        for (const auto &[name, hp] : agents) {
            SearchResult s;
            s.agent = name;
            const std::size_t samples = name == "BO" ? 160 : 256;
            s.batchedStepsPerSec = searchStepsPerSec(
                env, name, hp, /*batched=*/true, samples, guard);
            s.perStepStepsPerSec = searchStepsPerSec(
                env, name, hp, /*batched=*/false, samples, guard);
            std::printf("%-8s %14.1f %14.1f %8.2fx\n", name.c_str(),
                        s.batchedStepsPerSec, s.perStepStepsPerSec,
                        s.speedup());
            searches.push_back(std::move(s));
        }
    }

    std::ostringstream json;
    json << "{\"bench\":\"bo_hotloop\",\"steadyState\":[";
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const WindowResult &r = windows[i];
        if (i)
            json << ",";
        json << "{\"config\":\"window" << r.window
             << "\",\"samplesPerSec\":" << r.samplesPerSec
             << ",\"refitSamplesPerSec\":" << r.refitSamplesPerSec
             << ",\"speedup\":" << r.speedup() << "}";
    }
    json << "],\"predict\":{\"config\":\"n" << kGpPoints << "m"
         << kQueries << "\",\"batchQueriesPerSec\":" << batchQps
         << ",\"scalarQueriesPerSec\":" << scalarQps
         << ",\"speedup\":" << batchQps / scalarQps
         << "},\"search\":{\"env\":\"FARSIGym\",\"agents\":[";
    for (std::size_t i = 0; i < searches.size(); ++i) {
        const SearchResult &s = searches[i];
        if (i)
            json << ",";
        json << "{\"agent\":\"" << s.agent
             << "\",\"batchedStepsPerSec\":" << s.batchedStepsPerSec
             << ",\"perStepStepsPerSec\":" << s.perStepStepsPerSec
             << ",\"speedup\":" << s.speedup() << "}";
    }
    json << "]}}";

    std::printf("BENCH_bo.json %s\n", json.str().c_str());
    std::ofstream out("BENCH_bo.json");
    out << json.str() << "\n";
    if (guard == 0.0)
        std::fprintf(stderr, "warning: guard is zero\n");
    return 0;
}
