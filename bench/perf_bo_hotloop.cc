/**
 * @file
 * Perf tracking for the Bayesian-optimization hot loop: the steady
 * state where history sits at the sliding-window limit and every new
 * observation evicts an old one.
 *
 * Three sections, each optimized-vs-seed:
 *
 *  - steady state: samples/sec of a windowed BO search (window 150 /
 *    300 / 600, 256 candidates) once history is pinned at max_history.
 *    The optimized path absorbs each sample with a rank-1 Cholesky
 *    bordering update plus rank-1 downdates for the eviction plan and
 *    scores candidates through one blocked multi-RHS solve; the seed
 *    path (`reference_impl`) refactorizes the kernel matrix in O(n^3)
 *    on every trim and runs per-candidate scalar predicts. Both agents
 *    are pre-filled through observe() only (no GP work), so the timed
 *    region isolates exactly the per-sample surrogate cost.
 *
 *  - predict: queries/sec of GaussianProcess::predictBatch vs a loop
 *    of scalar predict() calls on a fitted 600-point GP, 256 queries
 *    per sweep — the candidate-scoring kernel in isolation.
 *
 *  - kernel build: builds/sec of the GEMM-decomposed cross-distance
 *    matrix (crossSquaredDistances) vs the naive per-pair loop at the
 *    predictBatch shapes (600 x 256, dim 4).
 *
 *  - backward solve: columns/sec of the blocked multi-RHS L^T X = B
 *    (Cholesky::solveUpperBatch) vs per-column scalar back-
 *    substitution — the second triangular solve behind posteriorJoint.
 *
 *  - cohort proposal: env-steps/sec of the batch acquisition modes
 *    (ThompsonBatch / BatchEI) dispatching whole cohorts through
 *    batchEval at 1/2/8 workers, with the worker counts asserted
 *    bit-identical (the bench exits nonzero on drift).
 *
 *  - search dispatch: env-steps/sec of runSearch per-step vs batchEval
 *    for BO and RL on FARSIGym (microsecond steps, where the batched
 *    ask-tell path and chunked stepBatch dispatch matter).
 *
 * Emits a machine-readable line prefixed "BENCH_bo.json " on stdout and
 * writes the same JSON to BENCH_bo.json in the working directory,
 * alongside the other BENCH_*.json trackers.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agents/bayesian_opt.h"
#include "agents/registry.h"
#include "core/driver.h"
#include "core/toy_envs.h"
#include "envs/farsi_gym_env.h"

using namespace archgym;

namespace {

constexpr double kMinSeconds = 0.4;
constexpr std::size_t kMaxSteps = 200000;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Run fn until the time budget is hit; returns calls/sec. */
template <typename Fn>
double
callsPerSecond(Fn &&fn, std::size_t batch = 1)
{
    fn();  // warmup (first-call setup excluded, as in steady state)
    std::size_t steps = 0;
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && steps < kMaxSteps) {
        for (std::size_t b = 0; b < batch; ++b)
            fn();
        steps += batch;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(steps) / seconds(start, now);
}

/**
 * Samples/sec of one BO ask-tell cycle with history pinned at `window`.
 * Pre-fill goes through observe() only — no GP work on either path —
 * so the timed loop measures exactly the steady-state surrogate cost
 * (the callsPerSecond warmup call absorbs the initial full fit, which
 * both paths share).
 */
double
steadyStateSamplesPerSec(std::size_t window, bool reference,
                         double &guard)
{
    QuadraticEnv env({7.0, 13.0, 21.0, 4.0});
    HyperParams hp;
    hp.set("max_history", static_cast<std::int64_t>(window))
        .set("num_candidates", 256)
        .set("reference_impl", reference ? 1 : 0);
    BayesianOptAgent agent(env.actionSpace(), hp, 97);

    // Fill the window past the first trim so every timed observe
    // evicts: observe() alone never fits, so this is cheap even for
    // the reference path at window 600.
    Rng fill(11);
    for (std::size_t i = 0; i < window + 8; ++i) {
        const Action a = env.actionSpace().sample(fill);
        const StepResult sr = env.step(a);
        agent.observe(a, sr.observation, sr.reward);
    }

    return callsPerSecond([&] {
        const Action a = agent.selectAction();
        const StepResult sr = env.step(a);
        agent.observe(a, sr.observation, sr.reward);
        guard += sr.reward;
    });
}

/** Env-steps/sec of a full BO/RL search through runSearch. */
double
searchStepsPerSec(Environment &env, const std::string &agent_name,
                  const HyperParams &hp, bool batched,
                  std::size_t max_samples, double &guard)
{
    RunConfig cfg;
    cfg.maxSamples = max_samples;
    cfg.recordRewardHistory = false;
    cfg.batchEval = batched;
    std::size_t steps = 0;
    {
        auto agent = makeAgent(agent_name, env.actionSpace(), hp, 31);
        guard += runSearch(env, *agent, cfg).bestReward;  // warmup
    }
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && steps < kMaxSteps) {
        auto agent = makeAgent(agent_name, env.actionSpace(), hp, 31);
        const RunResult r = runSearch(env, *agent, cfg);
        guard += r.bestReward;
        steps += r.samplesUsed;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(steps) / seconds(start, now);
}

struct WindowResult
{
    std::size_t window;
    double samplesPerSec = 0.0;
    double refitSamplesPerSec = 0.0;
    double speedup() const { return samplesPerSec / refitSamplesPerSec; }
};

struct SearchResult
{
    std::string agent;
    double batchedStepsPerSec = 0.0;
    double perStepStepsPerSec = 0.0;
    double speedup() const
    {
        return batchedStepsPerSec / perStepStepsPerSec;
    }
};

} // namespace

int
main()
{
    double guard = 0.0;  // keep the optimizer honest

    // --- Steady-state windowed search ---------------------------------
    std::printf("BO steady-state throughput (history at max_history, "
                "256 candidates, samples/sec)\n");
    std::printf("%-8s %14s %14s %9s\n", "window", "samples/s",
                "refit/s", "speedup");
    std::vector<WindowResult> windows;
    for (const std::size_t window : {150u, 300u, 600u}) {
        WindowResult r;
        r.window = window;
        r.samplesPerSec =
            steadyStateSamplesPerSec(window, /*reference=*/false, guard);
        r.refitSamplesPerSec =
            steadyStateSamplesPerSec(window, /*reference=*/true, guard);
        std::printf("%-8zu %14.1f %14.1f %8.2fx\n", window,
                    r.samplesPerSec, r.refitSamplesPerSec, r.speedup());
        windows.push_back(r);
    }

    // --- Scalar vs batched GP predict ---------------------------------
    const std::size_t kGpPoints = 600;
    const std::size_t kQueries = 256;
    GaussianProcess gp(0.2, 1.0, 1e-4);
    {
        Rng rng(5);
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        for (std::size_t i = 0; i < kGpPoints; ++i) {
            xs.push_back({rng.uniform(), rng.uniform(), rng.uniform(),
                          rng.uniform()});
            ys.push_back(rng.uniform(-2.0, 2.0));
        }
        gp.fit(xs, ys);
    }
    std::vector<std::vector<double>> queries;
    {
        Rng rng(6);
        for (std::size_t q = 0; q < kQueries; ++q) {
            queries.push_back({rng.uniform(), rng.uniform(),
                               rng.uniform(), rng.uniform()});
        }
    }
    std::vector<double> means, vars;
    const double batchSweepsPerSec = callsPerSecond([&] {
        gp.predictBatch(queries, means, vars);
        guard += means[0] + vars[0];
    });
    const double scalarSweepsPerSec = callsPerSecond([&] {
        for (const auto &q : queries) {
            double mean, var;
            gp.predict(q, mean, var);
            guard += mean + var;
        }
    });
    const double batchQps =
        batchSweepsPerSec * static_cast<double>(kQueries);
    const double scalarQps =
        scalarSweepsPerSec * static_cast<double>(kQueries);
    std::printf("\nGP predict on %zu training points, %zu queries/sweep "
                "(queries/sec)\n",
                kGpPoints, kQueries);
    std::printf("%-8s %14.1f\n%-8s %14.1f\n%-8s %13.2fx\n", "batch",
                batchQps, "scalar", scalarQps, "speedup",
                batchQps / scalarQps);

    // --- GEMM kernel build vs naive pairwise --------------------------
    const std::size_t kDim = 4;
    std::vector<double> kbA(kGpPoints * kDim), kbB(kQueries * kDim);
    {
        Rng rng(77);
        for (auto &v : kbA)
            v = rng.uniform();
        for (auto &v : kbB)
            v = rng.uniform();
    }
    std::vector<double> kbBt(kDim * kQueries);
    for (std::size_t j = 0; j < kQueries; ++j)
        for (std::size_t k = 0; k < kDim; ++k)
            kbBt[k * kQueries + j] = kbB[j * kDim + k];
    std::vector<double> kbAn(kGpPoints), kbBn(kQueries);
    rowSquaredNorms(kbA.data(), kGpPoints, kDim, kbAn.data());
    rowSquaredNorms(kbB.data(), kQueries, kDim, kbBn.data());
    std::vector<double> kbOut(kGpPoints * kQueries);
    const double gemmBuildsPerSec = callsPerSecond([&] {
        crossSquaredDistances(kbA.data(), kbAn.data(), kGpPoints,
                              kbBt.data(), kbBn.data(), kQueries, kDim,
                              kbOut.data());
        guard += kbOut[0];
    });
    const double naiveBuildsPerSec = callsPerSecond([&] {
        crossSquaredDistancesNaive(kbA.data(), kbAn.data(), kGpPoints,
                                   kbB.data(), kbBn.data(), kQueries,
                                   kDim, kbOut.data());
        guard += kbOut[0];
    });
    std::printf("\nCross-distance kernel build, %zu x %zu dim %zu "
                "(builds/sec)\n",
                kGpPoints, kQueries, kDim);
    std::printf("%-8s %14.1f\n%-8s %14.1f\n%-8s %13.2fx\n", "gemm",
                gemmBuildsPerSec, "naive", naiveBuildsPerSec, "speedup",
                gemmBuildsPerSec / naiveBuildsPerSec);

    // --- Backward batched solve vs per-column scalar ------------------
    double batchBackColsPerSec = 0.0;
    double scalarBackColsPerSec = 0.0;
    {
        Rng rng(88);
        Matrix spd(kGpPoints, kGpPoints);
        for (std::size_t i = 0; i < kGpPoints; ++i)
            for (std::size_t j = 0; j <= i; ++j) {
                const double v = rng.uniform(-1.0, 1.0) /
                                 static_cast<double>(kGpPoints);
                spd(i, j) = v;
                spd(j, i) = v;
            }
        for (std::size_t i = 0; i < kGpPoints; ++i)
            spd(i, i) += 2.0;
        const Cholesky chol(spd);
        Matrix rhs(kGpPoints, kQueries);
        for (std::size_t i = 0; i < kGpPoints; ++i)
            for (std::size_t j = 0; j < kQueries; ++j)
                rhs(i, j) = rng.uniform(-2.0, 2.0);
        Matrix work;
        batchBackColsPerSec =
            callsPerSecond([&] {
                work = rhs;
                chol.solveUpperBatch(work);
                guard += work(0, 0);
            }) *
            static_cast<double>(kQueries);
        // Per-column scalar oracle: the back-substitution op order of
        // Cholesky::solve, one column at a time.
        const double *fac = chol.packedData();
        const auto rowStart = [](std::size_t i) {
            return i * (i + 1) / 2;
        };
        std::vector<double> col(kGpPoints);
        scalarBackColsPerSec =
            callsPerSecond([&] {
                for (std::size_t j = 0; j < kQueries; ++j) {
                    for (std::size_t i = 0; i < kGpPoints; ++i)
                        col[i] = rhs(i, j);
                    for (std::size_t ii = kGpPoints; ii > 0; --ii) {
                        const std::size_t i = ii - 1;
                        double s = col[i];
                        for (std::size_t k = i + 1; k < kGpPoints; ++k)
                            s -= fac[rowStart(k) + i] * col[k];
                        col[i] = s / fac[rowStart(i) + i];
                    }
                    guard += col[0];
                }
            }) *
            static_cast<double>(kQueries);
    }
    std::printf("\nBackward batched solve L^T X = B, %zu x %zu "
                "(columns/sec)\n",
                kGpPoints, kQueries);
    std::printf("%-8s %14.1f\n%-8s %14.1f\n%-8s %13.2fx\n", "batch",
                batchBackColsPerSec, "scalar", scalarBackColsPerSec,
                "speedup", batchBackColsPerSec / scalarBackColsPerSec);

    // --- Cohort proposals through batchEval at 1/2/8 workers ----------
    std::printf("\nBO cohort proposals on FARSIGym, cohort 8 "
                "(env-steps/sec; worker counts must agree bitwise)\n");
    std::printf("%-14s %12s %12s %12s %10s\n", "mode", "1w/s", "2w/s",
                "8w/s", "identical");
    struct CohortModeResult
    {
        std::string config;
        double w1 = 0.0, w2 = 0.0, w8 = 0.0;
        bool identical = true;
    };
    std::vector<CohortModeResult> cohortModes;
    bool cohortDrift = false;
    {
        const std::vector<std::pair<std::string, int>> modes = {
            {"ThompsonBatch", 3}, {"BatchEI", 4}};
        for (const auto &[name, acq] : modes) {
            HyperParams hp{{"acquisition", acq},
                           {"num_candidates", 64},
                           {"max_history", 64},
                           {"cohort", 8},
                           {"n_init", 8}};
            CohortModeResult r;
            r.config = name;
            std::vector<double> refHistory;
            double refBest = 0.0;
            for (const std::size_t workers : {1u, 2u, 8u}) {
                FarsiGymEnv env;
                env.setBatchWorkers(workers);
                // One recorded run pins the trajectory for the
                // bit-identity check...
                RunConfig cfg;
                cfg.maxSamples = 160;
                cfg.batchEval = true;
                auto probe = makeAgent("BO", env.actionSpace(), hp, 31);
                const RunResult run = runSearch(env, *probe, cfg);
                if (workers == 1) {
                    refHistory = run.rewardHistory;
                    refBest = run.bestReward;
                } else if (run.rewardHistory != refHistory ||
                           run.bestReward != refBest) {
                    r.identical = false;
                    cohortDrift = true;
                }
                // ...then the timed loop measures throughput.
                const double sps = searchStepsPerSec(
                    env, "BO", hp, /*batched=*/true, 160, guard);
                (workers == 1 ? r.w1 : workers == 2 ? r.w2 : r.w8) =
                    sps;
            }
            std::printf("%-14s %12.1f %12.1f %12.1f %10s\n",
                        r.config.c_str(), r.w1, r.w2, r.w8,
                        r.identical ? "yes" : "NO");
            cohortModes.push_back(std::move(r));
        }
    }

    // --- Per-step vs batched search dispatch --------------------------
    std::printf("\nSearch dispatch on FARSIGym (env-steps/sec)\n");
    std::printf("%-8s %14s %14s %9s\n", "agent", "batched/s",
                "per-step/s", "speedup");
    std::vector<SearchResult> searches;
    {
        FarsiGymEnv env;
        const std::vector<std::pair<std::string, HyperParams>> agents = {
            {"RL", {{"batch_size", 16}}},
            {"BO",
             {{"num_candidates", 64},
              {"max_history", 64},
              {"n_init", 8}}},
        };
        for (const auto &[name, hp] : agents) {
            SearchResult s;
            s.agent = name;
            const std::size_t samples = name == "BO" ? 160 : 256;
            s.batchedStepsPerSec = searchStepsPerSec(
                env, name, hp, /*batched=*/true, samples, guard);
            s.perStepStepsPerSec = searchStepsPerSec(
                env, name, hp, /*batched=*/false, samples, guard);
            std::printf("%-8s %14.1f %14.1f %8.2fx\n", name.c_str(),
                        s.batchedStepsPerSec, s.perStepStepsPerSec,
                        s.speedup());
            searches.push_back(std::move(s));
        }
    }

    std::ostringstream json;
    json << "{\"bench\":\"bo_hotloop\",\"steadyState\":[";
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const WindowResult &r = windows[i];
        if (i)
            json << ",";
        json << "{\"config\":\"window" << r.window
             << "\",\"samplesPerSec\":" << r.samplesPerSec
             << ",\"refitSamplesPerSec\":" << r.refitSamplesPerSec
             << ",\"speedup\":" << r.speedup() << "}";
    }
    json << "],\"predict\":{\"config\":\"n" << kGpPoints << "m"
         << kQueries << "\",\"batchQueriesPerSec\":" << batchQps
         << ",\"scalarQueriesPerSec\":" << scalarQps
         << ",\"speedup\":" << batchQps / scalarQps
         << "},\"kernelBuild\":{\"config\":\"n" << kGpPoints << "m"
         << kQueries << "d" << kDim
         << "\",\"gemmBuildsPerSec\":" << gemmBuildsPerSec
         << ",\"naiveBuildsPerSec\":" << naiveBuildsPerSec
         << ",\"speedup\":" << gemmBuildsPerSec / naiveBuildsPerSec
         << "},\"backwardSolve\":{\"config\":\"n" << kGpPoints << "m"
         << kQueries
         << "\",\"batchColumnsPerSec\":" << batchBackColsPerSec
         << ",\"scalarColumnsPerSec\":" << scalarBackColsPerSec
         << ",\"speedup\":" << batchBackColsPerSec / scalarBackColsPerSec
         << "},\"cohort\":{\"env\":\"FARSIGym\",\"modes\":[";
    for (std::size_t i = 0; i < cohortModes.size(); ++i) {
        const CohortModeResult &r = cohortModes[i];
        if (i)
            json << ",";
        json << "{\"config\":\"" << r.config
             << "\",\"workers1StepsPerSec\":" << r.w1
             << ",\"workers2StepsPerSec\":" << r.w2
             << ",\"workers8StepsPerSec\":" << r.w8
             << ",\"bitIdentical\":" << (r.identical ? 1 : 0) << "}";
    }
    json << "]},\"search\":{\"env\":\"FARSIGym\",\"agents\":[";
    for (std::size_t i = 0; i < searches.size(); ++i) {
        const SearchResult &s = searches[i];
        if (i)
            json << ",";
        json << "{\"agent\":\"" << s.agent
             << "\",\"batchedStepsPerSec\":" << s.batchedStepsPerSec
             << ",\"perStepStepsPerSec\":" << s.perStepStepsPerSec
             << ",\"speedup\":" << s.speedup() << "}";
    }
    json << "]}}";

    std::printf("BENCH_bo.json %s\n", json.str().c_str());
    std::ofstream out("BENCH_bo.json");
    out << json.str() << "\n";
    if (guard == 0.0)
        std::fprintf(stderr, "warning: guard is zero\n");
    if (cohortDrift) {
        std::fprintf(stderr,
                     "ERROR: cohort proposals drifted across worker counts; "
                     "batched acquisition must be bit-identical at 1/2/8 "
                     "workers\n");
        return 1;
    }
    return 0;
}
