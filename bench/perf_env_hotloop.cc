/**
 * @file
 * Perf tracking for the environment hot loops across all four families
 * (DRAM, FARSI, Timeloop, Maestro), plus sweep throughput through the
 * persistent worker pool.
 *
 * For each family the bench measures env-steps/sec over a fixed cycle
 * of sampled actions on two paths:
 *
 *  - optimized: the environment's step() — decoded-once workload views,
 *    persistent simulator state, scratch buffers reset by reuse;
 *  - baseline: the pre-PR per-step-rebuild path — the reference cost
 *    model entry points that re-derive workload structure (predecessor
 *    scans, tile candidate lists, loop-order argsorts, trace decode)
 *    on every call, exactly what step() used to do.
 *
 * Sweep throughput runs runSweepParallel (worker pool, one env per
 * worker slot) at 1/2/4/8 threads and reports configs/sec.
 *
 * Batch mode measures the vectorized generation-evaluation path: a GA
 * at population 64 searching each family through the batched ask-tell
 * loop (selectActionBatch -> stepBatch -> observeBatch), with
 * Environment::setBatchWorkers at 1/2/4/8 — env-steps/sec per worker
 * count, i.e. how fast one population-based search run chews through
 * generations when stepBatch fans out over the shared pool.
 *
 * Emits a machine-readable line prefixed "BENCH_envs.json " on stdout
 * and writes the same JSON to BENCH_envs.json in the working directory,
 * alongside BENCH_dram.json from perf_dram_hotloop.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "core/driver.h"
#include "dramsys/reference_controller.h"
#include "envs/dram_gym_env.h"
#include "envs/farsi_gym_env.h"
#include "envs/maestro_gym_env.h"
#include "envs/timeloop_gym_env.h"
#include "farsi/scheduler.h"
#include "maestro/cost_model.h"
#include "timeloop/cost_model.h"

using namespace archgym;

namespace {

constexpr double kMinSeconds = 0.5;
constexpr std::size_t kMaxSteps = 2000000;
constexpr std::size_t kNumActions = 64;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * Run fn repeatedly until the time budget is hit; returns calls/sec.
 * `batch` calls share one clock read so the timer does not shadow
 * sub-microsecond steps (use 1 for coarse work like whole sweeps).
 */
template <typename Fn>
double
stepsPerSecond(Fn &&fn, std::size_t batch = 8)
{
    fn();  // warmup (first-call allocations excluded, as in steady state)
    std::size_t steps = 0;
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && steps < kMaxSteps) {
        for (std::size_t b = 0; b < batch; ++b)
            fn();
        steps += batch;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(steps) / seconds(start, now);
}

/** Deterministic cycle of on-grid actions for an environment. */
std::vector<Action>
sampleActions(const Environment &env, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Action> actions;
    actions.reserve(kNumActions);
    for (std::size_t i = 0; i < kNumActions; ++i)
        actions.push_back(env.actionSpace().sample(rng));
    return actions;
}

struct FamilyResult
{
    std::string family;
    double stepsPerSec = 0.0;
    double baselineStepsPerSec = 0.0;
    double speedup() const { return stepsPerSec / baselineStepsPerSec; }
};

struct BatchPoint
{
    std::size_t threads;
    double stepsPerSec;
};

struct BatchResult
{
    std::string family;
    std::vector<BatchPoint> points;
};

constexpr std::size_t kBatchPopulation = 64;

/**
 * Env-steps/sec of a batched GA search (population kBatchPopulation) at
 * the given stepBatch worker count: repeated seeded runs of
 * `generations` generations until the time budget is hit.
 */
double
batchedGaStepsPerSec(Environment &env, std::size_t workers,
                     std::size_t generations, double &guard)
{
    env.setBatchWorkers(workers);
    RunConfig cfg;
    cfg.maxSamples = kBatchPopulation * generations;
    cfg.recordRewardHistory = false;
    cfg.batchEval = true;
    HyperParams hp;
    hp.set("population_size",
           static_cast<std::int64_t>(kBatchPopulation));

    std::size_t steps = 0;
    // One warmup run builds the per-slot evaluation state.
    {
        auto agent = makeAgent("GA", env.actionSpace(), hp, 1234);
        guard += runSearch(env, *agent, cfg).bestReward;
    }
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && steps < kMaxSteps) {
        auto agent = makeAgent("GA", env.actionSpace(), hp, 1234);
        const RunResult r = runSearch(env, *agent, cfg);
        guard += r.bestReward;
        steps += r.samplesUsed;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(steps) / seconds(start, now);
}

} // namespace

int
main()
{
    std::vector<FamilyResult> families;
    double guard = 0.0;  // keep the optimizer honest

    // --- DRAMGym ------------------------------------------------------
    {
        DramGymEnv::Options o;
        o.traceLength = 512;
        DramGymEnv env(o);
        const auto actions = sampleActions(env, 11);
        std::size_t i = 0;
        FamilyResult r;
        r.family = "DRAMGym";
        r.stepsPerSec = stepsPerSecond([&] {
            guard += env.step(actions[i++ % kNumActions]).reward;
        });
        // Seed path: per-step controller construction + full trace
        // copy/decode (what step() did before the zero-copy rewrite).
        i = 0;
        r.baselineStepsPerSec = stepsPerSecond([&] {
            const dram::ControllerConfig cfg =
                env.decodeAction(actions[i++ % kNumActions]);
            dram::ReferenceDramController ref(env.options().spec, cfg);
            const dram::SimResult sim = ref.run(env.trace());
            guard += env.objective().reward(
                {sim.avgLatencyNs, sim.power.avgPowerW,
                 sim.totalEnergyPj() / 1e6});
        });
        families.push_back(r);
    }

    // --- FARSIGym -----------------------------------------------------
    {
        FarsiGymEnv env;
        const auto actions = sampleActions(env, 12);
        std::size_t i = 0;
        FamilyResult r;
        r.family = "FARSIGym";
        r.stepsPerSec = stepsPerSecond([&] {
            guard += env.step(actions[i++ % kNumActions]).reward;
        });
        // Per-step rebuild: evaluateSoc over the raw graph re-derives
        // the dependency structure and allocates every buffer.
        const farsi::TaskGraph graph = farsi::edgeDetection();
        i = 0;
        r.baselineStepsPerSec = stepsPerSecond([&] {
            const farsi::SocResult sim = farsi::evaluateSoc(
                env.decodeAction(actions[i++ % kNumActions]), graph);
            guard += env.objective().reward(
                {sim.powerW, sim.latencyMs, sim.areaMm2});
        });
        families.push_back(r);
    }

    // --- TimeloopGym --------------------------------------------------
    {
        TimeloopGymEnv::Options o;
        o.network = timeloop::resNet18();
        TimeloopGymEnv env(o);
        const auto actions = sampleActions(env, 13);
        std::size_t i = 0;
        FamilyResult r;
        r.family = "TimeloopGym";
        r.stepsPerSec = stepsPerSecond([&] {
            guard += env.step(actions[i++ % kNumActions]).reward;
        });
        const timeloop::Network net = timeloop::resNet18();
        i = 0;
        r.baselineStepsPerSec = stepsPerSecond([&] {
            const timeloop::LayerCost cost = timeloop::evaluateNetwork(
                env.decodeAction(actions[i++ % kNumActions]), net);
            guard += env.objective().reward(
                {cost.latencyMs, cost.energyUj, cost.areaMm2});
        });
        families.push_back(r);
    }

    // --- MaestroGym ---------------------------------------------------
    {
        MaestroGymEnv env;
        const auto actions = sampleActions(env, 14);
        std::size_t i = 0;
        FamilyResult r;
        r.family = "MaestroGym";
        r.stepsPerSec = stepsPerSecond([&] {
            guard += env.step(actions[i++ % kNumActions]).reward;
        });
        const timeloop::Network net = timeloop::resNet18();
        i = 0;
        r.baselineStepsPerSec = stepsPerSecond([&] {
            const maestro::MappingCost cost =
                maestro::evaluateMappingOnNetwork(
                    env.decodeAction(actions[i++ % kNumActions]), net);
            guard += cost.runtimeCycles;
        });
        families.push_back(r);
    }

    std::printf("Environment hot-loop throughput (env-steps/sec)\n");
    std::printf("%-14s %14s %14s %9s\n", "family", "steps/s",
                "rebuild/s", "speedup");
    for (const FamilyResult &r : families) {
        std::printf("%-14s %14.1f %14.1f %8.2fx\n", r.family.c_str(),
                    r.stepsPerSec, r.baselineStepsPerSec, r.speedup());
    }

    // --- Batch mode: GA generations through stepBatch ------------------
    struct BatchCase
    {
        std::string family;
        std::function<std::unique_ptr<Environment>()> make;
        std::size_t generations;
    };
    const std::vector<BatchCase> batchCases = {
        {"DRAMGym",
         [] {
             DramGymEnv::Options o;
             o.traceLength = 512;
             return std::unique_ptr<Environment>(
                 std::make_unique<DramGymEnv>(o));
         },
         2},
        {"FARSIGym",
         [] {
             return std::unique_ptr<Environment>(
                 std::make_unique<FarsiGymEnv>());
         },
         32},
        {"TimeloopGym",
         [] {
             TimeloopGymEnv::Options o;
             o.network = timeloop::resNet18();
             return std::unique_ptr<Environment>(
                 std::make_unique<TimeloopGymEnv>(o));
         },
         8},
        {"MaestroGym",
         [] {
             return std::unique_ptr<Environment>(
                 std::make_unique<MaestroGymEnv>());
         },
         32},
    };

    std::printf("\nBatch mode (GA, population %zu, env-steps/sec via "
                "stepBatch)\n",
                kBatchPopulation);
    std::printf("%-14s %10s %12s %12s %12s %12s\n", "family", "threads:",
                "1", "2", "4", "8");
    std::vector<BatchResult> batchResults;
    for (const BatchCase &bc : batchCases) {
        auto env = bc.make();
        BatchResult br;
        br.family = bc.family;
        std::printf("%-14s %10s", bc.family.c_str(), "");
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            const double sps = batchedGaStepsPerSec(*env, threads,
                                                    bc.generations,
                                                    guard);
            br.points.push_back(BatchPoint{threads, sps});
            std::printf(" %12.1f", sps);
        }
        std::printf("\n");
        batchResults.push_back(std::move(br));
    }

    // --- Sweep throughput through the persistent worker pool ----------
    const std::size_t kSweepConfigs = 192;
    const std::size_t kSweepSamples = 100;
    Rng sweepRng(21);
    const auto configs =
        defaultHyperGrid("RW").randomSample(kSweepConfigs, sweepRng);
    const AgentBuilder builder = [](const ParamSpace &space,
                                    const HyperParams &hp,
                                    std::uint64_t s) {
        return makeAgent("RW", space, hp, s);
    };
    const EnvFactory factory = [] {
        return std::unique_ptr<Environment>(
            std::make_unique<FarsiGymEnv>());
    };
    RunConfig runCfg;
    runCfg.maxSamples = kSweepSamples;
    runCfg.recordRewardHistory = false;

    std::printf("\nSweep throughput (FARSIGym, RW, %zu configs x %zu "
                "samples)\n",
                kSweepConfigs, kSweepSamples);
    std::printf("%-8s %14s\n", "threads", "configs/s");
    struct SweepPoint
    {
        std::size_t threads;
        double configsPerSec;
    };
    std::vector<SweepPoint> sweepPoints;
    // Warm the pool threads (environments are per sweep call).
    runSweepParallel(factory, "RW", builder, configs, runCfg, 5, 2);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        const double sweepsPerSec = stepsPerSecond(
            [&] {
                const SweepResult sweep = runSweepParallel(
                    factory, "RW", builder, configs, runCfg, 5, threads);
                guard += sweep.bestRewards.front();
            },
            /*batch=*/1);
        const double cps =
            sweepsPerSec * static_cast<double>(kSweepConfigs);
        sweepPoints.push_back(SweepPoint{threads, cps});
        std::printf("%-8zu %14.1f\n", threads, cps);
    }

    std::ostringstream json;
    json << "{\"bench\":\"env_hotloop\",\"families\":[";
    for (std::size_t i = 0; i < families.size(); ++i) {
        const FamilyResult &r = families[i];
        if (i)
            json << ",";
        json << "{\"family\":\"" << r.family
             << "\",\"envStepsPerSec\":" << r.stepsPerSec
             << ",\"rebuildStepsPerSec\":" << r.baselineStepsPerSec
             << ",\"speedup\":" << r.speedup() << "}";
    }
    json << "],\"batch\":{\"agent\":\"GA\",\"population\":"
         << kBatchPopulation << ",\"families\":[";
    for (std::size_t i = 0; i < batchResults.size(); ++i) {
        const BatchResult &br = batchResults[i];
        if (i)
            json << ",";
        json << "{\"family\":\"" << br.family << "\",\"points\":[";
        for (std::size_t p = 0; p < br.points.size(); ++p) {
            if (p)
                json << ",";
            json << "{\"threads\":" << br.points[p].threads
                 << ",\"stepsPerSec\":" << br.points[p].stepsPerSec
                 << "}";
        }
        json << "]}";
    }
    json << "]},\"sweep\":{\"env\":\"FARSIGym\",\"agent\":\"RW\","
         << "\"configs\":" << kSweepConfigs
         << ",\"samplesPerConfig\":" << kSweepSamples << ",\"points\":[";
    for (std::size_t i = 0; i < sweepPoints.size(); ++i) {
        if (i)
            json << ",";
        json << "{\"threads\":" << sweepPoints[i].threads
             << ",\"configsPerSec\":" << sweepPoints[i].configsPerSec
             << "}";
    }
    json << "]}}";

    std::printf("BENCH_envs.json %s\n", json.str().c_str());
    std::ofstream out("BENCH_envs.json");
    out << json.str() << "\n";
    if (guard == 0.0)
        std::fprintf(stderr, "warning: guard is zero\n");
    return 0;
}
