/**
 * @file
 * Ablation (DESIGN.md §5): the Bayesian-optimization GP history window.
 *
 * BO's surrogate cost grows with the number of retained observations —
 * the scalability limit the paper attributes to BO (§2). This bench
 * sweeps the window size and reports solution quality plus wall-clock
 * time on both surrogate engines:
 *
 *  - incremental: the steady-state O(n^2) path (rank-1 Cholesky
 *    append/downdate, batched candidate scoring);
 *  - full refit:  the seed O(n^3) path (`reference_impl`), which
 *    refactorizes on every history change and scores candidates with
 *    scalar predicts.
 *
 * Quality saturates while the full-refit cost keeps growing with the
 * window; the incremental column shows the asymptotic win that makes
 * large windows affordable.
 *
 * A second axis compares proposal modes at a fixed window: scalar EI
 * (one proposal per refit) against the cohort modes ThompsonBatch and
 * batch-EI (eight proposals per refit), reporting best reward,
 * samples-to-best, and wall-clock under generation-at-a-time
 * evaluation.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "envs/dram_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

namespace {

/** Total wall-clock seconds and best-reward summary for one engine. */
double
runWindow(DramGymEnv &env, std::int64_t window, bool reference,
          std::vector<double> &bests)
{
    double seconds = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        HyperParams hp;
        hp.set("max_history", static_cast<double>(window))
            .set("num_candidates", 64)
            .set("reference_impl", reference ? 1 : 0);
        auto agent = makeAgent("BO", env.actionSpace(), hp, seed);
        RunConfig cfg;
        cfg.maxSamples = 400;
        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = runSearch(env, *agent, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        seconds += std::chrono::duration<double>(t1 - t0).count();
        bests.push_back(r.bestReward);
    }
    return seconds;
}

/**
 * One proposal mode on the generation-at-a-time driver path: total
 * wall-clock, best rewards, and samples-to-best across three seeds.
 */
double
runProposalMode(DramGymEnv &env, std::int64_t acquisition,
                std::vector<double> &bests, std::vector<double> &toBest)
{
    double seconds = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        HyperParams hp;
        hp.set("max_history", 128)
            .set("num_candidates", 64)
            .set("acquisition", static_cast<double>(acquisition))
            .set("cohort", 8);
        auto agent = makeAgent("BO", env.actionSpace(), hp, seed);
        RunConfig cfg;
        cfg.maxSamples = 400;
        cfg.batchEval = true;
        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = runSearch(env, *agent, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        seconds += std::chrono::duration<double>(t1 - t0).count();
        bests.push_back(r.bestReward);
        toBest.push_back(static_cast<double>(r.bestSampleIndex + 1));
    }
    return seconds;
}

} // namespace

int
main()
{
    printHeader("Ablation: BO GP window size vs quality and cost "
                "(DRAMGym, 400 samples)");

    DramGymEnv::Options o;
    o.pattern = dram::TracePattern::Cloud1;
    o.objective = DramObjective::LatencyAndPower;
    o.latencyTargetNs = 150.0;
    o.traceLength = 128;

    std::printf("%-10s %-12s %-12s %-12s %-13s %-13s %-10s\n", "window",
                "incr best", "incr mean", "refit mean", "incr time(s)",
                "refit time(s)", "speedup");
    for (const std::int64_t window : {16, 32, 64, 128, 256}) {
        DramGymEnv env(o);
        std::vector<double> bests;
        const double incrSeconds =
            runWindow(env, window, /*reference=*/false, bests);
        std::vector<double> refBests;
        const double refitSeconds =
            runWindow(env, window, /*reference=*/true, refBests);
        // Quality parity between the engines is the point of showing
        // both means: the incremental numerics must not cost reward.
        const Summary s = summarize(bests);
        const Summary ref = summarize(refBests);
        std::printf("%-10lld %-12.4g %-12.4g %-12.4g %-13.3f %-13.3f "
                    "%8.2fx\n",
                    static_cast<long long>(window), s.max, s.mean,
                    ref.mean, incrSeconds, refitSeconds,
                    refitSeconds / incrSeconds);
    }
    std::printf(
        "\nQuality saturates with the window while full-refit cost "
        "grows cubically;\nthe incremental engine (rank-1 "
        "append/downdate + batched scoring) keeps the\nper-sample cost "
        "quadratic, so large windows stay affordable.\n");

    std::printf("\nAblation: proposal mode at window 128, cohort 8 "
                "(DRAMGym, 400 samples,\ngeneration-at-a-time "
                "evaluation)\n");
    std::printf("%-16s %-12s %-12s %-16s %-10s\n", "mode", "best",
                "mean best", "samples-to-best", "time(s)");
    struct ProposalMode
    {
        const char *name;
        std::int64_t acquisition;
    };
    const ProposalMode kModes[] = {{"scalar-EI", 0},
                                   {"ThompsonBatch", 3},
                                   {"BatchEI", 4}};
    for (const ProposalMode &mode : kModes) {
        DramGymEnv env(o);
        std::vector<double> bests;
        std::vector<double> toBest;
        const double seconds =
            runProposalMode(env, mode.acquisition, bests, toBest);
        const Summary s = summarize(bests);
        const Summary t = summarize(toBest);
        std::printf("%-16s %-12.4g %-12.4g %-16.1f %-10.3f\n", mode.name,
                    s.max, s.mean, t.mean, seconds);
    }
    std::printf(
        "\nCohort modes propose 8 actions per surrogate refresh, so the "
        "GP is refit\n~8x less often for the same sample budget; "
        "samples-to-best shows how much\nsample efficiency each mode "
        "trades for that amortization.\n");
    return 0;
}
