/**
 * @file
 * Ablation (DESIGN.md §5): the Bayesian-optimization GP history window.
 *
 * BO's surrogate is cubic in the number of retained observations — the
 * scalability limit the paper attributes to BO (§2). This bench sweeps
 * the window size and reports both solution quality and wall-clock time,
 * exposing the accuracy/cost knee that motivates the windowed design.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "envs/dram_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Ablation: BO GP window size vs quality and cost "
                "(DRAMGym, 400 samples)");

    DramGymEnv::Options o;
    o.pattern = dram::TracePattern::Cloud1;
    o.objective = DramObjective::LatencyAndPower;
    o.latencyTargetNs = 150.0;
    o.traceLength = 128;

    std::printf("%-10s %-14s %-14s %-12s\n", "window", "best reward",
                "mean reward", "time (s)");
    for (const std::int64_t window : {16, 32, 64, 128, 256}) {
        DramGymEnv env(o);
        std::vector<double> bests;
        double seconds = 0.0;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            HyperParams hp;
            hp.set("max_history", static_cast<double>(window))
                .set("num_candidates", 64);
            auto agent = makeAgent("BO", env.actionSpace(), hp, seed);
            RunConfig cfg;
            cfg.maxSamples = 400;
            const auto t0 = std::chrono::steady_clock::now();
            const RunResult r = runSearch(env, *agent, cfg);
            const auto t1 = std::chrono::steady_clock::now();
            seconds += std::chrono::duration<double>(t1 - t0).count();
            bests.push_back(r.bestReward);
        }
        const Summary s = summarize(bests);
        std::printf("%-10lld %-14.4g %-14.4g %-12.3f\n",
                    static_cast<long long>(window), s.max, s.mean,
                    seconds);
    }
    std::printf("\nQuality saturates while cost keeps growing with the "
                "window — the cubic-GP trade-off.\n");
    return 0;
}
