/**
 * @file
 * Ablation (DESIGN.md §5): the Bayesian-optimization GP history window.
 *
 * BO's surrogate cost grows with the number of retained observations —
 * the scalability limit the paper attributes to BO (§2). This bench
 * sweeps the window size and reports solution quality plus wall-clock
 * time on both surrogate engines:
 *
 *  - incremental: the steady-state O(n^2) path (rank-1 Cholesky
 *    append/downdate, batched candidate scoring);
 *  - full refit:  the seed O(n^3) path (`reference_impl`), which
 *    refactorizes on every history change and scores candidates with
 *    scalar predicts.
 *
 * Quality saturates while the full-refit cost keeps growing with the
 * window; the incremental column shows the asymptotic win that makes
 * large windows affordable.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "envs/dram_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

namespace {

/** Total wall-clock seconds and best-reward summary for one engine. */
double
runWindow(DramGymEnv &env, std::int64_t window, bool reference,
          std::vector<double> &bests)
{
    double seconds = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        HyperParams hp;
        hp.set("max_history", static_cast<double>(window))
            .set("num_candidates", 64)
            .set("reference_impl", reference ? 1 : 0);
        auto agent = makeAgent("BO", env.actionSpace(), hp, seed);
        RunConfig cfg;
        cfg.maxSamples = 400;
        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = runSearch(env, *agent, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        seconds += std::chrono::duration<double>(t1 - t0).count();
        bests.push_back(r.bestReward);
    }
    return seconds;
}

} // namespace

int
main()
{
    printHeader("Ablation: BO GP window size vs quality and cost "
                "(DRAMGym, 400 samples)");

    DramGymEnv::Options o;
    o.pattern = dram::TracePattern::Cloud1;
    o.objective = DramObjective::LatencyAndPower;
    o.latencyTargetNs = 150.0;
    o.traceLength = 128;

    std::printf("%-10s %-12s %-12s %-12s %-13s %-13s %-10s\n", "window",
                "incr best", "incr mean", "refit mean", "incr time(s)",
                "refit time(s)", "speedup");
    for (const std::int64_t window : {16, 32, 64, 128, 256}) {
        DramGymEnv env(o);
        std::vector<double> bests;
        const double incrSeconds =
            runWindow(env, window, /*reference=*/false, bests);
        std::vector<double> refBests;
        const double refitSeconds =
            runWindow(env, window, /*reference=*/true, refBests);
        // Quality parity between the engines is the point of showing
        // both means: the incremental numerics must not cost reward.
        const Summary s = summarize(bests);
        const Summary ref = summarize(refBests);
        std::printf("%-10lld %-12.4g %-12.4g %-12.4g %-13.3f %-13.3f "
                    "%8.2fx\n",
                    static_cast<long long>(window), s.max, s.mean,
                    ref.mean, incrSeconds, refitSeconds,
                    refitSeconds / incrSeconds);
    }
    std::printf(
        "\nQuality saturates with the window while full-refit cost "
        "grows cubically;\nthe incremental engine (rank-1 "
        "append/downdate + batched scoring) keeps the\nper-sample cost "
        "quadratic, so large windows stay affordable.\n");
    return 0;
}
