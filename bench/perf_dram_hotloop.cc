/**
 * @file
 * Perf tracking for the DRAM simulation hot loop: requests/sec and
 * env-steps/sec for each scheduler configuration, for the optimized
 * incremental-state controller and for the seed reference
 * implementation (full trace copy + O(Q) queue scans per round, exactly
 * what DramGymEnv::step() used to do per sample).
 *
 * Emits a machine-readable line prefixed "BENCH_dram.json " on stdout
 * and writes the same JSON to BENCH_dram.json in the working directory,
 * so the perf trajectory can be tracked across PRs.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dramsys/controller.h"
#include "dramsys/decoded_trace.h"
#include "dramsys/reference_controller.h"
#include "dramsys/trace_gen.h"

using namespace archgym::dram;

namespace {

constexpr std::size_t kTraceLength = 20000;
constexpr double kMinSeconds = 0.6;
constexpr std::size_t kMaxReps = 400;

struct ConfigPoint
{
    std::string name;
    ControllerConfig cfg;
};

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Run fn repeatedly until the time budget is hit; returns runs/sec. */
template <typename Fn>
double
stepsPerSecond(Fn &&fn)
{
    fn();  // warmup (first-run allocations excluded, as in steady state)
    std::size_t reps = 0;
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && reps < kMaxReps) {
        fn();
        ++reps;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(reps) / seconds(start, now);
}

} // namespace

int
main()
{
    const MemSpec spec{};
    TraceConfig tc;
    tc.pattern = TracePattern::Streaming;
    tc.numRequests = kTraceLength;
    tc.seed = 3;
    const std::vector<MemoryRequest> trace = generateTrace(tc);
    const DecodedTrace decoded(spec, trace);

    std::vector<ConfigPoint> points;
    {
        ConfigPoint p;
        p.name = "fifo-bankwise";
        p.cfg.scheduler = SchedulerPolicy::Fifo;
        p.cfg.schedulerBuffer = BufferOrg::Bankwise;
        points.push_back(p);
    }
    {
        ConfigPoint p;
        p.name = "frfcfs-bankwise";
        p.cfg.scheduler = SchedulerPolicy::FrFcFs;
        p.cfg.schedulerBuffer = BufferOrg::Bankwise;
        points.push_back(p);
    }
    {
        // The acceptance config: one deep shared queue, FR-FCFS, a
        // large outstanding-transaction budget — the scan-heavy worst
        // case for the reference implementation.
        ConfigPoint p;
        p.name = "frfcfs-shared";
        p.cfg.scheduler = SchedulerPolicy::FrFcFs;
        p.cfg.schedulerBuffer = BufferOrg::Shared;
        p.cfg.maxActiveTransactions = 128;
        points.push_back(p);
    }
    {
        ConfigPoint p;
        p.name = "frfcfsgrp-shared";
        p.cfg.scheduler = SchedulerPolicy::FrFcFsGrp;
        p.cfg.schedulerBuffer = BufferOrg::Shared;
        p.cfg.maxActiveTransactions = 128;
        points.push_back(p);
    }

    std::printf("DRAM hot-loop throughput (trace=%zu streaming "
                "requests)\n",
                kTraceLength);
    std::printf("%-18s %14s %14s %14s %9s\n", "config", "opt steps/s",
                "ref steps/s", "opt reqs/s", "speedup");

    std::ostringstream json;
    json << "{\"bench\":\"dram_hotloop\",\"traceLength\":"
         << kTraceLength << ",\"pattern\":\"streaming\",\"configs\":[";

    bool first = true;
    for (const ConfigPoint &p : points) {
        // Optimized path: persistent controller, shared decoded trace —
        // what DramGymEnv::step() does per sample.
        DramController opt(spec, p.cfg);
        std::uint64_t guardOpt = 0;
        const double optSteps = stepsPerSecond([&] {
            guardOpt += opt.run(decoded).totalCycles;
        });

        // Reference path: per-step controller construction plus a full
        // trace copy and re-decode — the seed's per-sample cost.
        std::uint64_t guardRef = 0;
        const double refSteps = stepsPerSecond([&] {
            ReferenceDramController ref(spec, p.cfg);
            guardRef += ref.run(trace).totalCycles;
        });

        const double optReqs =
            optSteps * static_cast<double>(kTraceLength);
        const double speedup = optSteps / refSteps;
        std::printf("%-18s %14.2f %14.2f %14.3g %8.2fx\n",
                    p.name.c_str(), optSteps, refSteps, optReqs,
                    speedup);

        if (!first)
            json << ",";
        first = false;
        json << "{\"config\":\"" << p.name << "\",\"envStepsPerSec\":"
             << optSteps << ",\"refStepsPerSec\":" << refSteps
             << ",\"requestsPerSec\":" << optReqs
             << ",\"speedup\":" << speedup << "}";
        if (guardOpt == 0 || guardRef == 0)
            std::fprintf(stderr, "warning: zero-cycle run\n");
    }
    json << "]}";

    std::printf("BENCH_dram.json %s\n", json.str().c_str());
    std::ofstream out("BENCH_dram.json");
    out << json.str() << "\n";
    return 0;
}
