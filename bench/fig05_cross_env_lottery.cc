/**
 * @file
 * Reproduces Figure 5: the hyperparameter lottery across all four
 * environments — DRAMGym (streaming trace), TimeloopGym (Eyeriss-like
 * accelerator for ResNet-50), FARSIGym (edge-detection SoC), MaestroGym
 * (ResNet-18 mapping).
 *
 * The claim: the lottery is not a DRAM artifact; every environment shows
 * wide per-agent spread with overlapping best cases. For TimeloopGym /
 * FARSIGym / MaestroGym the paper plots "lower is better" quantities; we
 * report rewards (higher is better) with the conversion noted per row.
 */

#include <filesystem>
#include <memory>

#include "bench_util.h"
#include "envs/dram_gym_env.h"
#include "envs/farsi_gym_env.h"
#include "envs/maestro_gym_env.h"
#include "envs/timeloop_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Figure 5: hyperparameter lottery across environments");

    constexpr std::size_t kConfigs = 8;
    constexpr std::size_t kSamples = 250;

    struct Cell
    {
        std::string title;
        std::string slug;
        EnvFactory factory;
    };
    std::vector<Cell> cells;

    {
        DramGymEnv::Options o;
        o.pattern = dram::TracePattern::Streaming;
        o.objective = DramObjective::LatencyAndPower;
        o.latencyTargetNs = 150.0;
        o.traceLength = 192;
        cells.push_back({"(a) DRAMGym, streaming trace "
                         "(reward: higher better)",
                         "dram", [o] {
                             return std::unique_ptr<Environment>(
                                 std::make_unique<DramGymEnv>(o));
                         }});
    }
    {
        TimeloopGymEnv::Options o;
        o.network = timeloop::resNet50();
        o.latencyTargetMs = 5.0;
        cells.push_back({"(b) TimeloopGym, ResNet-50 "
                         "(reward ~ 1/|latency-target|)",
                         "timeloop", [o] {
                             return std::unique_ptr<Environment>(
                                 std::make_unique<TimeloopGymEnv>(o));
                         }});
    }
    {
        FarsiGymEnv::Options o;
        o.graph = farsi::edgeDetection();
        cells.push_back({"(c) FARSIGym, edge detection "
                         "(reward = -distance-to-budget, 0 is optimal)",
                         "farsi", [o] {
                             return std::unique_ptr<Environment>(
                                 std::make_unique<FarsiGymEnv>(o));
                         }});
    }
    {
        MaestroGymEnv::Options o;
        o.network = timeloop::resNet18();
        cells.push_back({"(d) MaestroGym, ResNet-18 mapping "
                         "(reward = 1/runtime-cycles)",
                         "maestro", [o] {
                             return std::unique_ptr<Environment>(
                                 std::make_unique<MaestroGymEnv>(o));
                         }});
    }

    // Sharded sweeps: per-cell shard directories under a scratch root.
    const std::filesystem::path shardBase =
        std::filesystem::temp_directory_path() / "archgym_fig05_shards";

    for (auto &cell : cells) {
        std::printf("\n%s\n", cell.title.c_str());
        std::vector<double> maxima;
        for (const auto &agent : agentNames()) {
            const auto cellDir = shardBase / (cell.slug + "_" + agent);
            const auto best =
                lotterySweepSharded(cell.factory, agent, kConfigs,
                                    kSamples, 202, cellDir.string());
            printBoxRow(agent, best);
            maxima.push_back(summarize(best).max);
        }
        const Summary m = summarize(maxima);
        std::printf("  cross-agent best-case ratio (max/min of maxima): "
                    "%.2f\n",
                    m.min != 0.0 ? m.max / m.min : 0.0);
    }
    return 0;
}
