/**
 * @file
 * Perf tracking for the proxy serving path (docs/proxy_serving.md): the
 * hot loops a proxy-guided lottery actually spends time in.
 *
 * Four sections:
 *
 *  - ingest: transitions/sec of reading one synthetic trajectory pool
 *    back from disk, columnar row-group pair vs the reference per-shard
 *    CSVs — the fixed-width memcpy decode vs shortest-round-trip text
 *    parsing.
 *
 *  - predict: predictions/sec of RandomForest::predictBatch (the SoA
 *    arena kernel) vs a loop of scalar predict() calls on the same
 *    forest, at cohort sizes 64 / 1024 / 65536. The ISSUE target is
 *    >= 5x batched-vs-scalar on the larger cohorts.
 *
 *  - minibatch: draws/sec of ColumnarDatasetReader::sampleMinibatch
 *    (256 rows without replacement) at growing dataset sizes — the
 *    sparse Fisher-Yates draw plus row-group gather must stay flat in
 *    rowCount(), which the flatness ratio at the end asserts.
 *
 *  - screen: end-to-end wall-clock of a proxy-screened DRAMGym lottery
 *    (pilot + screen + top-K frontier) vs simulating every config
 *    through the same sharded engine — the speedup the protocol exists
 *    to buy.
 *
 * Emits a machine-readable line prefixed "BENCH_proxy.json " on stdout
 * and writes the same JSON to BENCH_proxy.json in the working
 * directory, alongside the other BENCH_*.json trackers.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "core/columnar.h"
#include "core/driver.h"
#include "core/trajectory.h"
#include "envs/dram_gym_env.h"
#include "proxy/proxy_dataset.h"
#include "proxy/proxy_screen.h"
#include "proxy/random_forest.h"

using namespace archgym;
namespace fs = std::filesystem;

namespace {

constexpr double kMinSeconds = 0.4;
constexpr std::size_t kMaxSteps = 200000;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Run fn until the time budget is hit; returns calls/sec. */
template <typename Fn>
double
callsPerSecond(Fn &&fn, std::size_t batch = 1)
{
    fn();  // warmup (first-call setup excluded, as in steady state)
    std::size_t steps = 0;
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && steps < kMaxSteps) {
        for (std::size_t b = 0; b < batch; ++b)
            fn();
        steps += batch;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(steps) / seconds(start, now);
}

/** A 4-dim ParamSpace standing in for a design space. */
ParamSpace
syntheticSpace()
{
    ParamSpace space;
    space.add(ParamDesc::integer("p0", 1, 64));
    space.add(ParamDesc::integer("p1", 1, 64));
    space.add(ParamDesc::real("p2", 0.0, 1.0, 0.05));
    space.add(ParamDesc::powerOfTwo("p3", 2, 32));
    return space;
}

/** `runs` trajectories of `rows_per_run` synthetic transitions. */
std::vector<TrajectoryLog>
syntheticPool(const ParamSpace &space, std::size_t runs,
              std::size_t rows_per_run, Rng &rng)
{
    std::vector<TrajectoryLog> logs;
    for (std::size_t r = 0; r < runs; ++r) {
        TrajectoryLog log("SynthEnv", "RW", "runs=" + std::to_string(r));
        for (std::size_t i = 0; i < rows_per_run; ++i) {
            Transition t;
            t.action = space.sample(rng);
            const double a0 = t.action[0], a1 = t.action[1];
            t.observation = {a0 * 1.5 + a1, a0 - a1 * 0.25,
                             a0 * a1 * 0.01};
            t.reward = -t.observation[0];
            log.append(std::move(t));
        }
        logs.push_back(std::move(log));
    }
    return logs;
}

const std::vector<std::string> kMetricNames = {"m_lat", "m_pow", "m_en"};

/** Write the pool both ways under dir; returns the columnar stem. */
std::string
writePoolBothWays(const std::string &dir, const ParamSpace &space,
                  const std::vector<TrajectoryLog> &logs,
                  std::size_t rows_per_group = 1024)
{
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
        StreamingDatasetWriter csv((fs::path(dir) / "pool.csv").string(),
                                   space, kMetricNames, 0, logs.size());
        for (std::size_t i = 0; i < logs.size(); ++i)
            csv.append(i, logs[i]);
        csv.close();
    }
    const std::string stem = (fs::path(dir) / "pool").string();
    {
        ColumnarDatasetWriter col(stem, space, kMetricNames,
                                  rows_per_group);
        for (const auto &log : logs)
            col.append(log);
        col.close();
    }
    return stem;
}

} // namespace

int
main()
{
    double guard = 0.0;  // keep the optimizer honest
    const ParamSpace space = syntheticSpace();
    const std::string workDir =
        (fs::temp_directory_path() / "archgym_proxy_hotloop").string();

    // --- Ingest: columnar pair vs reference CSV -----------------------
    Rng poolRng(401);
    const auto logs = syntheticPool(space, 64, 512, poolRng);
    const std::size_t poolRows = 64 * 512;
    const std::string stem =
        writePoolBothWays(workDir, space, logs);

    const double csvSweepsPerSec = callsPerSecond([&] {
        const Dataset d = Dataset::loadDirectory(workDir);
        guard += static_cast<double>(d.transitionCount());
    });
    const double colSweepsPerSec = callsPerSecond([&] {
        const auto transitions =
            ColumnarDatasetReader::open(stem).loadAllTransitions();
        guard += transitions.back().reward;
    });
    const double csvRowsPerSec =
        csvSweepsPerSec * static_cast<double>(poolRows);
    const double columnarRowsPerSec =
        colSweepsPerSec * static_cast<double>(poolRows);
    std::printf("Dataset ingest, %zu transitions (rows/sec)\n", poolRows);
    std::printf("%-10s %14.0f\n%-10s %14.0f\n%-10s %13.2fx\n", "columnar",
                columnarRowsPerSec, "csv", csvRowsPerSec, "speedup",
                columnarRowsPerSec / csvRowsPerSec);

    // --- Forest predict: SoA batched kernel vs scalar oracle ----------
    RandomForest forest(ForestConfig{});
    {
        Rng rng(402);
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        for (std::size_t i = 0; i < 2000; ++i) {
            xs.push_back(space.sample(rng));
            ys.push_back(xs.back()[0] * 1.5 + xs.back()[1]);
        }
        forest.fit(xs, ys);
    }
    struct CohortResult
    {
        std::size_t cohort;
        double batchedPerSec = 0.0;
        double scalarPerSec = 0.0;
        double speedup() const { return batchedPerSec / scalarPerSec; }
    };
    std::vector<CohortResult> cohorts;
    std::printf("\nForest predict, %zu trees (predictions/sec)\n",
                ForestConfig{}.numTrees);
    std::printf("%-8s %14s %14s %9s\n", "cohort", "batched/s",
                "scalar/s", "speedup");
    for (const std::size_t cohort : {64u, 1024u, 65536u}) {
        Rng rng(403);
        std::vector<double> rows(cohort * 4);
        std::vector<std::vector<double>> rowVecs(cohort);
        for (std::size_t r = 0; r < cohort; ++r) {
            rowVecs[r] = space.sample(rng);
            for (std::size_t d = 0; d < 4; ++d)
                rows[r * 4 + d] = rowVecs[r][d];
        }
        std::vector<double> out(cohort);
        CohortResult c;
        c.cohort = cohort;
        const double batchSweeps = callsPerSecond([&] {
            forest.predictBatchInto(rows.data(), cohort, 4, out.data());
            guard += out[0];
        });
        const double scalarSweeps = callsPerSecond([&] {
            for (const auto &row : rowVecs)
                guard += forest.predict(row);
        });
        c.batchedPerSec = batchSweeps * static_cast<double>(cohort);
        c.scalarPerSec = scalarSweeps * static_cast<double>(cohort);
        std::printf("%-8zu %14.0f %14.0f %8.2fx\n", cohort,
                    c.batchedPerSec, c.scalarPerSec, c.speedup());
        cohorts.push_back(c);
    }

    // --- Minibatch sampling: flat in dataset size ---------------------
    struct MinibatchResult
    {
        std::size_t rows;
        double drawsPerSec = 0.0;
    };
    std::vector<MinibatchResult> minibatches;
    // A 64-row draw over 16-row groups touches at most 64 groups, so
    // once the dataset holds a few hundred groups the per-draw cost is
    // capped by the minibatch, not the dataset — the flatness ratio at
    // the end (largest vs middle size, both past saturation) is the
    // regression-tracked claim.
    std::printf("\nColumnar minibatch (64 rows w/o replacement, 16-row "
                "groups, draws/sec)\n");
    std::printf("%-10s %14s\n", "dataset", "draws/s");
    for (const std::size_t runs : {32u, 128u, 512u}) {
        const std::string dir = workDir + "_mb" + std::to_string(runs);
        Rng rng(404);
        const auto pool = syntheticPool(space, runs, 128, rng);
        const std::string mbStem =
            writePoolBothWays(dir, space, pool, /*rows_per_group=*/16);
        const auto reader = ColumnarDatasetReader::open(mbStem);
        Rng draw(405);
        MinibatchResult m;
        m.rows = reader.rowCount();
        m.drawsPerSec = callsPerSecond([&] {
            const TransitionColumns cols =
                reader.sampleMinibatch(64, draw);
            guard += cols.rewards[0];
        });
        std::printf("%-10zu %14.1f\n", m.rows, m.drawsPerSec);
        minibatches.push_back(m);
        fs::remove_all(dir);
    }
    const double flatness =
        minibatches[minibatches.size() - 2].drawsPerSec /
        minibatches.back().drawsPerSec;
    std::printf("flatness (4x dataset growth past saturation, "
                "draws-per-sec ratio): %.2fx\n",
                flatness);

    // --- Screen-then-simulate vs simulate-all -------------------------
    const std::string sweepDir = workDir + "_screen";
    fs::remove_all(sweepDir);
    const std::string agentName = "GA";
    const std::size_t lotterySize = 24;
    const auto configs = sampleLotteryConfigs(agentName, lotterySize, 9);
    const AgentBuilder builder =
        [&agentName](const ParamSpace &sp, const HyperParams &hp,
                     std::uint64_t s) {
            return makeAgent(agentName, sp, hp, s);
        };
    // A longer trace than proxyEnvOptions() (160): this section measures
    // the protocol's win when simulation dominates, so the per-step
    // simulator cost must dwarf the sharded engine's manifest/fsync
    // bookkeeping — as it does for the real workloads being proxied.
    DramGymEnv::Options screenEnvOpts = proxyEnvOptions();
    screenEnvOpts.traceLength = 4096;
    const EnvFactory factory = [screenEnvOpts] {
        return std::unique_ptr<Environment>(
            std::make_unique<DramGymEnv>(screenEnvOpts));
    };
    RunConfig runCfg;
    runCfg.maxSamples = 60;

    const auto screenStart = std::chrono::steady_clock::now();
    ProxyScreenOptions popts;
    popts.directory = (fs::path(sweepDir) / "screened").string();
    const auto probeEnv = makeProxyEnv();
    popts.objective = &probeEnv.objective();
    popts.pilotConfigs = 6;
    popts.screenTopK = 3;
    popts.shardSize = 4;
    popts.numThreads = 1;
    const ProxyScreenResult screen = runSweepProxyScreened(
        factory, agentName, builder, configs, runCfg, popts, 9);
    const auto screenEnd = std::chrono::steady_clock::now();
    guard += screen.frontierSweep.bestRewards.front();

    ShardedSweepOptions fullOpts;
    fullOpts.directory = (fs::path(sweepDir) / "full").string();
    fullOpts.shardSize = 4;
    fullOpts.numThreads = 1;
    const ShardedSweepResult full = runSweepSharded(
        factory, agentName, builder, configs, runCfg, fullOpts, 9);
    const auto fullEnd = std::chrono::steady_clock::now();
    guard += full.bestRewards.front();

    const double screenSeconds = seconds(screenStart, screenEnd);
    const double fullSeconds = seconds(screenEnd, fullEnd);
    const double screenConfigsPerSec =
        static_cast<double>(lotterySize) / screenSeconds;
    const double fullConfigsPerSec =
        static_cast<double>(lotterySize) / fullSeconds;
    std::printf("\nScreen-then-simulate vs simulate-all (%zu configs, "
                "%zu samples each)\n",
                lotterySize, runCfg.maxSamples);
    std::printf("%-14s %9.3f s  (%zu pilot + %zu frontier simulated, "
                "%zu screened by proxy)\n",
                "screened", screenSeconds, screen.pilot.configs.size(),
                screen.frontier.size(), screen.ranking.size());
    std::printf("%-14s %9.3f s\n%-14s %8.2fx\n", "simulate-all",
                fullSeconds, "speedup", fullSeconds / screenSeconds);
    fs::remove_all(sweepDir);
    fs::remove_all(workDir);

    std::ostringstream json;
    json << "{\"bench\":\"proxy_hotloop\",\"ingest\":{\"config\":\"rows"
         << poolRows << "\",\"columnarRowsPerSec\":" << columnarRowsPerSec
         << ",\"csvRowsPerSec\":" << csvRowsPerSec
         << ",\"speedup\":" << columnarRowsPerSec / csvRowsPerSec
         << "},\"predict\":[";
    for (std::size_t i = 0; i < cohorts.size(); ++i) {
        const CohortResult &c = cohorts[i];
        if (i)
            json << ",";
        json << "{\"config\":\"cohort" << c.cohort
             << "\",\"batchedPredictionsPerSec\":" << c.batchedPerSec
             << ",\"scalarPredictionsPerSec\":" << c.scalarPerSec
             << ",\"speedup\":" << c.speedup() << "}";
    }
    json << "],\"minibatch\":[";
    for (std::size_t i = 0; i < minibatches.size(); ++i) {
        const MinibatchResult &m = minibatches[i];
        if (i)
            json << ",";
        json << "{\"config\":\"rows" << m.rows
             << "\",\"drawsPerSec\":" << m.drawsPerSec << "}";
    }
    json << "],\"screen\":{\"config\":\"configs" << lotterySize
         << "\",\"screenedConfigsPerSec\":" << screenConfigsPerSec
         << ",\"simulateAllConfigsPerSec\":" << fullConfigsPerSec
         << ",\"speedup\":" << fullSeconds / screenSeconds << "}}";

    std::printf("BENCH_proxy.json %s\n", json.str().c_str());
    std::ofstream out("BENCH_proxy.json");
    out << json.str() << "\n";
    if (guard == 0.0)
        std::fprintf(stderr, "warning: guard is zero\n");
    return 0;
}
