/**
 * @file
 * Shared dataset-collection setup for the §7 proxy-model benches
 * (Figs. 10-12): run ACO/GA/RW/BO hyperparameter explorations on
 * DRAMGym, log every transition, and build a held-out test set of fresh
 * random designs evaluated on the ground-truth simulator.
 */

#ifndef ARCHGYM_BENCH_PROXY_COMMON_H
#define ARCHGYM_BENCH_PROXY_COMMON_H

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "agents/registry.h"
#include "core/driver.h"
#include "core/trajectory.h"
#include "envs/dram_gym_env.h"

namespace archgym::bench {

/** Agents contributing to the diverse dataset (paper §7.1). */
inline const std::vector<std::string> &
proxyAgents()
{
    static const std::vector<std::string> agents = {"ACO", "GA", "RW",
                                                    "BO"};
    return agents;
}

inline DramGymEnv::Options
proxyEnvOptions()
{
    DramGymEnv::Options o;
    o.pattern = dram::TracePattern::Cloud1;
    o.objective = DramObjective::LatencyAndPower;
    o.latencyTargetNs = 150.0;
    o.traceLength = 160;
    return o;
}

inline DramGymEnv
makeProxyEnv()
{
    return DramGymEnv(proxyEnvOptions());
}

/**
 * Collect `runs_per_agent` exploration runs of `samples_per_run`
 * transitions from each proxy agent (different hyperparameters per run),
 * as the Fig. 9 aggregation pipeline prescribes.
 */
inline Dataset
collectProxyDataset(DramGymEnv &env, std::size_t runs_per_agent,
                    std::size_t samples_per_run)
{
    Dataset dataset;
    Rng rng(701);
    for (const auto &agentName : proxyAgents()) {
        HyperGrid grid = defaultHyperGrid(agentName);
        if (agentName == "BO") {
            grid.add("num_candidates", {48}).add("max_history", {64});
        }
        const auto configs = grid.randomSample(runs_per_agent, rng);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            auto agent = makeAgent(agentName, env.actionSpace(),
                                   configs[c], 7000 + c);
            RunConfig cfg;
            cfg.maxSamples = samples_per_run;
            cfg.logTrajectory = true;
            RunResult r = runSearch(env, *agent, cfg);
            dataset.add(std::move(r.trajectory));
        }
    }
    return dataset;
}

/**
 * Streamed variant of collectProxyDataset: every agent's exploration
 * runs go through the sharded sweep engine with trajectory export, so
 * transitions land in per-shard multi-block CSVs under
 * `directory/<agent>/` as runs complete instead of accumulating in
 * memory; the dataset is then re-ingested with Dataset::loadDirectory
 * (which recurses over the per-agent shard directories in sorted
 * order). Same pool shape as collectProxyDataset — same agents, same
 * hyperparameter draws — but per-run seeds come from the sweep
 * engine's index-only formula.
 */
inline Dataset
collectProxyDatasetStreamed(const std::string &directory,
                            std::size_t runs_per_agent,
                            std::size_t samples_per_run)
{
    std::filesystem::remove_all(directory);
    const EnvFactory factory = [] {
        return std::unique_ptr<Environment>(
            std::make_unique<DramGymEnv>(proxyEnvOptions()));
    };
    Rng rng(701);
    for (const auto &agentName : proxyAgents()) {
        HyperGrid grid = defaultHyperGrid(agentName);
        if (agentName == "BO") {
            grid.add("num_candidates", {48}).add("max_history", {64});
        }
        const auto configs = grid.randomSample(runs_per_agent, rng);
        const AgentBuilder builder =
            [&agentName](const ParamSpace &space, const HyperParams &hp,
                         std::uint64_t s) {
                return makeAgent(agentName, space, hp, s);
            };
        RunConfig cfg;
        cfg.maxSamples = samples_per_run;
        ShardedSweepOptions opts;
        opts.directory =
            (std::filesystem::path(directory) / agentName).string();
        opts.shardSize = 2;
        opts.exportDataset = true;
        runSweepSharded(factory, agentName, builder, configs, cfg, opts,
                        7000);
    }
    return Dataset::loadDirectory(directory);
}

/** Fresh uniformly random designs evaluated on the simulator. */
inline std::vector<Transition>
makeHeldOutSet(DramGymEnv &env, std::size_t n, std::uint64_t seed = 909)
{
    std::vector<Transition> test;
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        Transition t;
        t.action = env.actionSpace().sample(rng);
        const StepResult sr = env.step(t.action);
        t.observation = sr.observation;
        t.reward = sr.reward;
        test.push_back(std::move(t));
    }
    return test;
}

} // namespace archgym::bench

#endif // ARCHGYM_BENCH_PROXY_COMMON_H
