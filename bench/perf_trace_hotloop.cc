/**
 * @file
 * Perf tracking for the trace profiling / streamed generation hot
 * loops (ROADMAP item 3):
 *
 *  - profile: StackDistanceProfiler requests/sec over a materialized
 *    cloud-2 trace (the Fenwick fast path);
 *  - generate: requests/sec for the chunk-pull sources — the legacy
 *    cloud-2 pattern, the CDF-driven sd source (streamed and one-shot
 *    materialized), and the embedding-gather source;
 *  - streamed: DramGymEnv steps/sec in streamed mode at 100x the
 *    default trace length, plus the memory-flatness evidence: the peak
 *    chunk-buffer bytes at 1x and 100x must match exactly (the whole
 *    point of streaming), and stay within 2x of one chunk's worth of
 *    requests. Violations exit non-zero so CI catches regressions even
 *    before the baseline gate runs.
 *
 * Emits a machine-readable line prefixed "BENCH_trace.json " on stdout
 * and writes the same JSON to BENCH_trace.json in the working
 * directory, so the perf trajectory can be tracked across PRs
 * (scripts/check_bench_regression.py gates the *PerSec leaves).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dramsys/trace_gen.h"
#include "dramsys/trace_profile.h"
#include "envs/dram_gym_env.h"
#include "mathutil/rng.h"

using namespace archgym;
using namespace archgym::dram;

namespace {

constexpr std::size_t kProfileLen = 100000;
constexpr std::size_t kGenLen = 100000;
constexpr std::size_t kChunk = 4096;
constexpr std::size_t kEnvTraceLen = 25600;  ///< 100x the CLI's 256
constexpr double kMinSeconds = 0.4;
constexpr std::size_t kMaxReps = 400;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Run fn repeatedly until the time budget is hit; returns runs/sec. */
template <typename Fn>
double
stepsPerSecond(Fn &&fn)
{
    fn();  // warmup (first-run allocations excluded, as in steady state)
    std::size_t reps = 0;
    const auto start = std::chrono::steady_clock::now();
    auto now = start;
    while (seconds(start, now) < kMinSeconds && reps < kMaxReps) {
        fn();
        ++reps;
        now = std::chrono::steady_clock::now();
    }
    return static_cast<double>(reps) / seconds(start, now);
}

/** Pull `total` requests in chunks through a reused buffer; returns the
 *  peak buffer footprint in bytes (the streaming working set). */
std::size_t
streamAll(SyntheticTraceSource &source, std::size_t total)
{
    std::vector<MemoryRequest> chunk;
    std::size_t peak = 0;
    std::size_t remaining = total;
    while (remaining > 0) {
        const std::size_t n = remaining < kChunk ? remaining : kChunk;
        chunk.clear();
        source.next(n, chunk);
        peak = std::max(peak, chunk.capacity() * sizeof(MemoryRequest));
        remaining -= n;
    }
    return peak;
}

} // namespace

int
main()
{
    // --- profile: Fenwick stack-distance profiling throughput --------
    TraceConfig tc;
    tc.pattern = TracePattern::Cloud2;
    tc.numRequests = kProfileLen;
    tc.seed = 3;
    const std::vector<MemoryRequest> trace = generateTrace(tc);

    const double profileSteps = stepsPerSecond([&] {
        StackDistanceProfiler profiler;
        for (const auto &r : trace)
            profiler.observe(r);
        if (profiler.cdf().totalAccesses != trace.size())
            std::exit(1);
    });
    const double profileReqs =
        profileSteps * static_cast<double>(trace.size());

    const StackDistanceCdf cdf = profileTrace(trace);

    // --- generate: chunk-pull source throughput ----------------------
    struct GenPoint
    {
        std::string name;
        double requestsPerSec;
    };
    std::vector<GenPoint> gens;

    const auto measureStreamed = [&](const std::string &name,
                                     SyntheticTraceSource &source) {
        const double steps = stepsPerSecond([&] {
            source.reset();
            streamAll(source, kGenLen);
        });
        gens.push_back({name, steps * static_cast<double>(kGenLen)});
    };

    const auto cloud2 = makePatternSource(tc);
    measureStreamed("cloud2-streamed", *cloud2);

    const auto sd = makeSdSource(cdf, SdSourceConfig{});
    measureStreamed("sd-streamed", *sd);

    {
        const double steps = stepsPerSecond([&] {
            sd->reset();
            const auto all = materialize(*sd, kGenLen);
            if (all.size() != kGenLen)
                std::exit(1);
        });
        gens.push_back(
            {"sd-materialized", steps * static_cast<double>(kGenLen)});
    }

    const auto emb = makeEmbSource(EmbSourceConfig{});
    measureStreamed("emb-streamed", *emb);

    std::printf("trace hot-loop throughput\n");
    std::printf("  %-18s %14.3g reqs/s\n", "profile(cloud2)", profileReqs);
    for (const auto &g : gens)
        std::printf("  %-18s %14.3g reqs/s\n", g.name.c_str(),
                    g.requestsPerSec);

    // --- streamed: 100x env steps at flat memory ---------------------
    const auto makeStreamedEnv = [](std::size_t requests) {
        DramGymEnv::Options o;
        o.pattern = dram::TracePattern::Cloud2;
        o.objective = DramObjective::LatencyAndPower;
        o.latencyTargetNs = 150.0;
        o.trace.source = "cloud2";
        o.trace.numRequests = requests;
        o.trace.streamed = true;
        o.trace.chunkRequests = kChunk;
        return DramGymEnv(o);
    };

    // The streaming working set is one chunk buffer regardless of total
    // length: measure it straight off the env's own source factory.
    DramGymEnv env1x = makeStreamedEnv(256);
    DramGymEnv env100x = makeStreamedEnv(kEnvTraceLen);
    const std::size_t peak1x =
        streamAll(*TraceSourceFactory(env1x.traceSpec()).make(), 256);
    const std::size_t peak100x = streamAll(
        *TraceSourceFactory(env100x.traceSpec()).make(), kEnvTraceLen);
    const std::size_t materializedBytes =
        kEnvTraceLen * sizeof(MemoryRequest);
    const std::size_t flatBudget = 2 * kChunk * sizeof(MemoryRequest);

    bool flat = true;
    if (peak100x > flatBudget) {
        std::fprintf(stderr,
                     "FAIL: streamed buffer peak %zu B exceeds 2x chunk "
                     "budget %zu B\n",
                     peak100x, flatBudget);
        flat = false;
    }
    if (peak100x > std::max(peak1x, kChunk * sizeof(MemoryRequest))) {
        std::fprintf(stderr,
                     "FAIL: streamed buffer peak grew with trace length "
                     "(1x %zu B -> 100x %zu B)\n",
                     peak1x, peak100x);
        flat = false;
    }
    if (!env100x.trace().empty()) {
        std::fprintf(stderr,
                     "FAIL: streamed env materialized %zu requests\n",
                     env100x.trace().size());
        flat = false;
    }

    Rng rng(11);
    const Action action = env100x.actionSpace().sample(rng);
    const double envSteps = stepsPerSecond([&] {
        if (env100x.step(action).observation.empty())
            std::exit(1);
    });

    std::printf("  %-18s %14.3g steps/s (%zu reqs streamed, buffer "
                "%zu B vs %zu B materialized)\n",
                "env-100x-streamed", envSteps, kEnvTraceLen, peak100x,
                materializedBytes);

    std::ostringstream json;
    json << "{\"bench\":\"trace_hotloop\",\"profile\":{\"requests\":"
         << trace.size() << ",\"requestsPerSec\":" << profileReqs
         << "},\"generate\":[";
    for (std::size_t i = 0; i < gens.size(); ++i) {
        if (i)
            json << ",";
        json << "{\"config\":\"" << gens[i].name
             << "\",\"requestsPerSec\":" << gens[i].requestsPerSec << "}";
    }
    json << "],\"streamed\":{\"config\":\"dram-cloud2-100x\","
         << "\"requests\":" << kEnvTraceLen
         << ",\"chunkRequests\":" << kChunk
         << ",\"envStepsPerSec\":" << envSteps
         << ",\"bufferPeakBytes\":" << peak100x
         << ",\"materializedBytes\":" << materializedBytes
         << ",\"memoryFlat\":" << (flat ? "true" : "false") << "}}";

    std::printf("BENCH_trace.json %s\n", json.str().c_str());
    std::ofstream out("BENCH_trace.json");
    out << json.str() << "\n";
    return flat ? 0 : 1;
}
