/**
 * @file
 * Reproduces Figure 8: wall-clock time to completion of each agent on
 * DRAMGym and FARSIGym for a fixed simulator sample budget, measured
 * with google-benchmark.
 *
 * The paper's point: wall-clock comparisons are distorted by per-agent
 * implementation/overlap differences (BO's cubic surrogate, RL's network
 * updates, population agents' batching), which is exactly why sample
 * efficiency — not runtime — is the right normalization metric (§6.2).
 */

#include <benchmark/benchmark.h>

#include "agents/registry.h"
#include "core/driver.h"
#include "envs/dram_gym_env.h"
#include "envs/farsi_gym_env.h"

using namespace archgym;

namespace {

constexpr std::size_t kSamples = 400;

void
runAgentOnEnv(benchmark::State &state, Environment &env,
              const std::string &agent_name)
{
    for (auto _ : state) {
        HyperParams hp;
        if (agent_name == "BO")
            hp.set("num_candidates", 64).set("max_history", 64);
        auto agent = makeAgent(agent_name, env.actionSpace(), hp, 17);
        RunConfig cfg;
        cfg.maxSamples = kSamples;
        const RunResult r = runSearch(env, *agent, cfg);
        benchmark::DoNotOptimize(r.bestReward);
    }
    state.counters["samples"] =
        benchmark::Counter(static_cast<double>(kSamples));
}

void
BM_Dram(benchmark::State &state, const std::string &agent)
{
    static DramGymEnv env = [] {
        DramGymEnv::Options o;
        o.pattern = dram::TracePattern::Cloud1;
        o.traceLength = 128;
        return DramGymEnv(o);
    }();
    runAgentOnEnv(state, env, agent);
}

void
BM_Farsi(benchmark::State &state, const std::string &agent)
{
    static FarsiGymEnv env;
    runAgentOnEnv(state, env, agent);
}

} // namespace

int
main(int argc, char **argv)
{
    for (const auto &agent : agentNames()) {
        benchmark::RegisterBenchmark(
            ("Fig8/DRAMGym/" + agent).c_str(),
            [agent](benchmark::State &s) { BM_Dram(s, agent); })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("Fig8/FARSIGym/" + agent).c_str(),
            [agent](benchmark::State &s) { BM_Farsi(s, agent); })
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
