/**
 * @file
 * Reproduces Figure 7: mean normalized reward under sample-budget
 * constraints for DRAMGym and TimeloopGym.
 *
 * The paper limits the number of simulator samples to {100, 1K, 100K,
 * 250K}; we sweep {100, 1K, 10K} (see EXPERIMENTS.md for scaling). For
 * each budget, every agent runs with a small hyperparameter sweep and
 * several seeds; per budget the mean best reward is min-max normalized
 * across agents.
 *
 * Expected shape (paper §6.2): in the low-sample regime even the random
 * walker is competitive and RL is weakest; RL's relative position
 * improves markedly as the budget grows.
 */

#include <algorithm>
#include <map>
#include <memory>

#include "bench_util.h"
#include "envs/dram_gym_env.h"
#include "envs/timeloop_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

namespace {

constexpr std::size_t kBudgets[] = {100, 1000, 10000};
constexpr std::size_t kConfigsPerAgent = 3;

void
runEnv(const std::string &title, const EnvFactory &env_factory)
{
    std::printf("\n[%s]\n", title.c_str());
    std::printf("  %-8s", "budget");
    for (const auto &a : agentNames())
        std::printf(" %8s", a.c_str());
    std::printf("   (mean normalized reward; 1.0 = best agent)\n");

    std::map<std::size_t, std::map<std::string, double>> table;
    for (std::size_t budget : kBudgets) {
        std::vector<double> means;
        for (const auto &agent : agentNames()) {
            const auto best = lotterySweepParallel(
                env_factory, agent, kConfigsPerAgent, budget, 303);
            means.push_back(mean(best));
        }
        // Normalize to the best agent at this budget (ratio-to-best), so
        // "all agents close to 1" reads as the paper's near-parity.
        const double top = *std::max_element(means.begin(), means.end());
        const double floor = *std::min_element(means.begin(),
                                               means.end());
        for (std::size_t i = 0; i < agentNames().size(); ++i) {
            const double v = means[i];
            // Shift into positive territory if rewards are negative
            // (FARSI-style objectives) before taking the ratio.
            const double shifted =
                floor < 0.0 ? v - floor * 1.001 : v;
            const double shiftedTop =
                floor < 0.0 ? top - floor * 1.001 : top;
            table[budget][agentNames()[i]] =
                shiftedTop > 0.0 ? shifted / shiftedTop : 0.0;
        }
    }

    for (std::size_t budget : kBudgets) {
        std::printf("  %-8zu", budget);
        for (const auto &a : agentNames())
            std::printf(" %8.3f", table[budget][a]);
        std::printf("\n");
    }

    // The §6.2 regime observations, quantified.
    const double rlLow = table[kBudgets[0]]["RL"];
    const double rlHigh = table[kBudgets[2]]["RL"];
    const double rwLow = table[kBudgets[0]]["RW"];
    std::printf("  RL normalized reward: %.3f @%zu -> %.3f @%zu "
                "(paper: RL improves with budget)\n",
                rlLow, kBudgets[0], rlHigh, kBudgets[2]);
    std::printf("  RW normalized reward @%zu: %.3f "
                "(paper: random walker competitive at low budgets)\n",
                kBudgets[0], rwLow);
}

} // namespace

int
main()
{
    printHeader("Figure 7: mean normalized reward vs simulator sample "
                "budget");

    runEnv("DRAMGym, cloud-1, latency+power", [] {
        DramGymEnv::Options o;
        o.pattern = dram::TracePattern::Cloud1;
        o.objective = DramObjective::LatencyAndPower;
        o.latencyTargetNs = 150.0;
        o.traceLength = 128;
        return std::unique_ptr<Environment>(
            std::make_unique<DramGymEnv>(o));
    });
    runEnv("TimeloopGym, ResNet-18, latency target", [] {
        TimeloopGymEnv::Options o;
        o.network = timeloop::resNet18();
        o.latencyTargetMs = 2.0;
        return std::unique_ptr<Environment>(
            std::make_unique<TimeloopGymEnv>(o));
    });
    return 0;
}
