/**
 * @file
 * Ablation (DESIGN.md §5): random-forest capacity (tree count x depth)
 * vs proxy accuracy, on the same DRAMGym diverse dataset used by the
 * Fig. 10-12 benches. Locates the capacity needed before the proxy's
 * RMSE saturates.
 */

#include <cstdio>

#include "bench_util.h"
#include "proxy/proxy_dataset.h"
#include "proxy/proxy_model.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Ablation: forest capacity vs proxy relative RMSE "
                "(mean over latency/power/energy)");

    DramGymEnv env = makeProxyEnv();
    const Dataset dataset = collectProxyDataset(env, 3, 400);
    const auto test = makeHeldOutSet(env, 150);
    Rng rng(88);
    const auto train = dataset.sampleDiverse(1200, proxyAgents(), rng);

    std::printf("%-8s", "trees\\d");
    for (int depth : {4, 8, 12, 16})
        std::printf(" depth=%-8d", depth);
    std::printf("\n");

    for (std::size_t trees : {5, 15, 40, 80}) {
        std::printf("%-8zu", trees);
        for (std::size_t depth : {4, 8, 12, 16}) {
            ForestConfig cfg;
            cfg.numTrees = trees;
            cfg.maxDepth = depth;
            ProxyCostModel model(env.actionSpace(), env.metricNames(),
                                 cfg);
            model.train(train);
            const ProxyAccuracy acc = model.evaluate(test);
            std::printf(" %6.2f%%%7s",
                        acc.meanRelativeRmse() * 100.0, "");
        }
        std::printf("\n");
    }
    return 0;
}
