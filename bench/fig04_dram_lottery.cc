/**
 * @file
 * Reproduces Figure 4: the hyperparameter lottery on DRAMGym.
 *
 * For each of the four memory traces (cloud-1, cloud-2, streaming,
 * random) and each of the three target objectives (low power, low
 * latency, joint latency+power), every agent family is swept over random
 * hyperparameter configurations. The per-configuration best rewards form
 * the box plots of Fig. 4; the paper's claims are (i) large per-agent
 * spread (up to ~90% IQR/median) and (ii) overlapping maxima — no agent
 * family dominates.
 */

#include <filesystem>

#include "bench_util.h"
#include "envs/dram_gym_env.h"

using namespace archgym;
using namespace archgym::bench;

int
main()
{
    printHeader("Figure 4: hyperparameter lottery, DRAMGym "
                "(best reward per hyperparameter config)");

    // Every sweep runs through the sharded engine; shard results land
    // under a scratch directory (one subdirectory per lottery cell)
    // that lotterySweepSharded wipes per sweep, so the figure always
    // measures fresh runs — the directories are scratch, not a resume
    // point.
    const std::filesystem::path shardBase =
        std::filesystem::temp_directory_path() / "archgym_fig04_shards";

    constexpr std::size_t kConfigs = 10;
    constexpr std::size_t kSamples = 80;
    constexpr std::size_t kTrace = 160;

    const dram::TracePattern traces[] = {
        dram::TracePattern::Cloud1, dram::TracePattern::Cloud2,
        dram::TracePattern::Streaming, dram::TracePattern::Random};
    const DramObjective objectives[] = {DramObjective::LowPower,
                                        DramObjective::LowLatency,
                                        DramObjective::LatencyAndPower};

    double worstSpread = 0.0;
    for (const auto objective : objectives) {
        for (const auto pattern : traces) {
            DramGymEnv::Options o;
            o.pattern = pattern;
            o.objective = objective;
            o.traceLength = kTrace;
            // Targets sit just below each trace's achievable floor, so
            // the reward keeps discriminating between designs instead of
            // saturating once the target is hit (the "low-power" /
            // "low-latency" reading of the Table 3 reward).
            o.latencyTargetNs =
                pattern == dram::TracePattern::Random ? 20.0 : 100.0;
            o.powerTargetW =
                pattern == dram::TracePattern::Random ? 0.75 : 0.9;
            const EnvFactory factory = [o] {
                return std::unique_ptr<Environment>(
                    std::make_unique<DramGymEnv>(o));
            };

            std::printf("\n[%s | %s]\n", toString(pattern),
                        toString(objective));
            std::vector<double> maxima;
            for (const auto &agent : agentNames()) {
                const auto cellDir =
                    shardBase / (std::string(toString(pattern)) + "_" +
                                 toString(objective) + "_" + agent);
                const auto best =
                    lotterySweepSharded(factory, agent, kConfigs,
                                        kSamples, 101, cellDir.string());
                printBoxRow(agent, best);
                worstSpread = std::max(worstSpread,
                                       spreadPercent(best));
                maxima.push_back(summarize(best).max);
            }
            const Summary m = summarize(maxima);
            std::printf("  best-config maxima across agents: "
                        "min %.4g / max %.4g (ratio %.2f)\n",
                        m.min, m.max, m.min > 0 ? m.max / m.min : 0.0);
        }
    }
    std::printf("\nWorst-case relative spread (IQR/median) across all "
                "cells: %.0f%%\n",
                worstSpread);
    std::printf("Paper reports up to 90%% spread for DRAMGym; the claim "
                "is the *existence* of large\nhyperparameter-induced "
                "variance, which the numbers above reproduce.\n");
    return 0;
}
